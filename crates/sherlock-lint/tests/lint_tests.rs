//! Integration tests: run the rule engine over the checked-in fixture
//! files and assert that exactly the `REAL`-marked lines are reported.
//!
//! The fixtures live under `tests/fixtures/` (excluded from workspace
//! scans by `workspace::SKIP_DIRS`), so they can contain deliberate
//! violations without polluting the real baseline.

use std::path::Path;

use sherlock_lint::{
    baseline::Baseline,
    rules::{check_deny_header, scan_source, FileClass, Finding, RuleKind},
    workspace::{find_workspace_root, scan_workspace, ScanConfig},
};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn scan_fixture(name: &str, class: FileClass) -> (String, Vec<Finding>) {
    let source = fixture(name);
    let findings = scan_source(name, &source, class, &RuleKind::ALL);
    (source, findings)
}

/// Every finding must anchor to a line carrying the `REAL` marker, and
/// every marked line must be found — so fixtures document themselves.
fn assert_matches_markers(source: &str, findings: &[Finding], rule: RuleKind) {
    let marked: Vec<u32> = source
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("// REAL"))
        .map(|(i, _)| i as u32 + 1)
        .collect();
    let mut reported: Vec<u32> =
        findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect();
    reported.sort_unstable();
    reported.dedup();
    assert_eq!(reported, marked, "findings: {findings:#?}");
}

#[test]
fn raw_strings_do_not_hide_or_fake_findings() {
    let (source, findings) = scan_fixture("raw_strings.rs", FileClass::Lib);
    assert_matches_markers(&source, &findings, RuleKind::PanicPath);
    assert_eq!(findings.len(), 1, "{findings:#?}");
}

#[test]
fn nested_block_comments_are_skipped() {
    let (source, findings) = scan_fixture("nested_comments.rs", FileClass::Lib);
    assert_matches_markers(&source, &findings, RuleKind::PanicPath);
    assert_eq!(findings.len(), 1, "{findings:#?}");
}

#[test]
fn char_literals_do_not_desync_the_lexer() {
    let (source, findings) = scan_fixture("char_literals.rs", FileClass::Lib);
    assert_matches_markers(&source, &findings, RuleKind::PanicPath);
    assert_eq!(findings.len(), 1, "{findings:#?}");
}

#[test]
fn cfg_test_items_are_exempt_but_shipped_code_is_not() {
    let (source, findings) = scan_fixture("cfg_test_module.rs", FileClass::Lib);
    assert_matches_markers(&source, &findings, RuleKind::PanicPath);
    // before(), cfg(not(test)) mod, after() — the two test mods are exempt.
    assert_eq!(findings.len(), 3, "{findings:#?}");
}

#[test]
fn panic_path_catches_every_pattern() {
    let (source, findings) = scan_fixture("panic_path.rs", FileClass::Lib);
    assert!(findings.iter().all(|f| f.rule == RuleKind::PanicPath), "{findings:#?}");
    // unwrap, expect, panic!, unreachable!, v[3], m[&7].
    assert_eq!(findings.len(), 6, "{findings:#?}");
    // unwrap_or / unwrap_or_else / unwrap_or_default never fire.
    assert!(findings.iter().all(|f| !f.snippet.contains("unwrap_or")), "{findings:#?}");
    let _ = source;
}

#[test]
fn panic_path_is_waived_outside_lib_code() {
    let (_, findings) = scan_fixture("panic_path.rs", FileClass::Other);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn nan_unsafe_catches_every_pattern() {
    let (_, findings) = scan_fixture("nan_unsafe.rs", FileClass::Other);
    assert!(findings.iter().all(|f| f.rule == RuleKind::NanUnsafe), "{findings:#?}");
    // ==, !=, == f64::NAN, partial_cmp().unwrap(), partial_cmp in sort_by.
    assert_eq!(findings.len(), 5, "{findings:#?}");
    assert!(findings.iter().all(|f| !f.snippet.contains("total_cmp")), "{findings:#?}");
}

#[test]
fn unseeded_rng_catches_every_pattern() {
    let (_, findings) = scan_fixture("unseeded_rng.rs", FileClass::Other);
    assert!(findings.iter().all(|f| f.rule == RuleKind::UnseededRng), "{findings:#?}");
    // thread_rng, from_entropy, rand::random, rand::rng.
    assert_eq!(findings.len(), 4, "{findings:#?}");
    assert!(findings.iter().all(|f| !f.snippet.contains("seed_from_u64")), "{findings:#?}");
}

#[test]
fn raw_spawn_fires_only_on_path_spawns_in_lib_code() {
    let (source, findings) = scan_fixture("raw_spawn.rs", FileClass::Lib);
    assert_matches_markers(&source, &findings, RuleKind::RawSpawn);
    // std::thread::spawn, std::thread::scope, thread::spawn; the escape,
    // the scope-handle method and the #[cfg(test)] spawn stay silent.
    assert_eq!(findings.len(), 3, "{findings:#?}");
    // Bin/bench/test files may spawn freely.
    let (_, other) = scan_fixture("raw_spawn.rs", FileClass::Other);
    assert!(other.is_empty(), "{other:#?}");
}

#[test]
fn raw_fs_write_fires_only_on_fs_path_writes_in_lib_code() {
    let (source, findings) = scan_fixture("raw_fs_write.rs", FileClass::Lib);
    assert_matches_markers(&source, &findings, RuleKind::RawFsWrite);
    // std::fs::write + fs::write; reads, writer methods, the escape, and
    // the #[cfg(test)] write stay silent. (The semantic
    // `unsynced-store-write` upgrade fires on more of this fixture — the
    // rename and the raw-fs-write-only escape — so count per rule.)
    let token_rule = findings.iter().filter(|f| f.rule == RuleKind::RawFsWrite).count();
    assert_eq!(token_rule, 2, "{findings:#?}");
    // Bin/bench/test files may write freely.
    let (_, other) = scan_fixture("raw_fs_write.rs", FileClass::Other);
    assert!(other.is_empty(), "{other:#?}");
}

#[test]
fn nondet_iteration_fixture_flags_exactly_the_marked_lines() {
    let (source, findings) = scan_fixture("nondet_iteration.rs", FileClass::Lib);
    assert_matches_markers(&source, &findings, RuleKind::NondetIteration);
    // Sorted copy, reducers, order-free sinks and the allow escape are silent.
    assert_eq!(findings.len(), 2, "{findings:#?}");
    let (_, other) = scan_fixture("nondet_iteration.rs", FileClass::Other);
    assert!(other.is_empty(), "{other:#?}");
}

#[test]
fn raw_panic_hook_fixture_flags_exactly_the_marked_lines() {
    let (source, findings) = scan_fixture("raw_panic_hook.rs", FileClass::Lib);
    assert_matches_markers(&source, &findings, RuleKind::RawPanicHook);
    // quiet_panics, the unrelated method, and the allow escape are silent.
    assert_eq!(findings.len(), 3, "{findings:#?}");
    // Hooks are process-global: the rule applies outside lib code too.
    let (_, other) = scan_fixture("raw_panic_hook.rs", FileClass::Other);
    assert_eq!(other.len(), 3, "{other:#?}");
}

#[test]
fn budget_blind_loop_fixture_flags_exactly_the_marked_lines() {
    let (source, findings) = scan_fixture("budget_blind_loop.rs", FileClass::Lib);
    assert_matches_markers(&source, &findings, RuleKind::BudgetBlindLoop);
    // The polling stage, header poll, trivial collector, allow escape and
    // the loop delegating to a budget-polling callee are silent; the loop
    // passing the handle to a non-polling callee is not.
    assert_eq!(findings.len(), 3, "{findings:#?}");
    let (_, other) = scan_fixture("budget_blind_loop.rs", FileClass::Other);
    assert!(other.is_empty(), "{other:#?}");
}

#[test]
fn lock_order_inversion_fixture_flags_exactly_the_marked_lines() {
    let (source, findings) = scan_fixture("lock_order_inversion.rs", FileClass::Lib);
    assert_matches_markers(&source, &findings, RuleKind::LockOrderInversion);
    // Consistent-order and drop-before-second pairs are silent; the
    // interprocedural site names the callee it reaches the lock through.
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(
        findings.iter().any(|f| f.message.contains("via call to `backward_inner`")),
        "{findings:#?}"
    );
    let (_, other) = scan_fixture("lock_order_inversion.rs", FileClass::Other);
    assert!(other.is_empty(), "{other:#?}");
}

#[test]
fn qualified_call_edges_survive_alias_shadowing() {
    // The fixture aliases every callee's bare name (`use … as …`), so the
    // edges only exist if `Self::`-, `crate::`- and `prelude::`-qualified
    // calls keep their literal target instead of the alias resolution.
    let (source, findings) = scan_fixture("call_graph_qualified.rs", FileClass::Lib);
    let marked = |tag: &str| -> Vec<u32> {
        source
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains(&format!("// REAL {tag}")))
            .map(|(i, _)| i as u32 + 1)
            .collect()
    };
    let reported = |rule: RuleKind| -> Vec<u32> {
        let mut lines: Vec<u32> =
            findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    };
    // The inversion spans a `Self::`-qualified call and a module-qualified
    // `sync::lock(` acquisition.
    assert_eq!(
        reported(RuleKind::LockOrderInversion),
        marked("lock-order-inversion"),
        "{findings:#?}"
    );
    // Loops delegating to polling callees through `crate::`/`prelude::`
    // paths are silent; the qualified edge to a non-polling callee fires.
    assert_eq!(reported(RuleKind::BudgetBlindLoop), marked("budget-blind-loop"), "{findings:#?}");
}

#[test]
fn guard_across_blocking_fixture_flags_exactly_the_marked_lines() {
    let (source, findings) = scan_fixture("guard_across_blocking.rs", FileClass::Lib);
    assert_matches_markers(&source, &findings, RuleKind::GuardAcrossBlocking);
    // Drop-before-write, inner-scope, consumed-probe and condvar-wait
    // shapes are silent.
    assert_eq!(findings.len(), 2, "{findings:#?}");
    let (_, other) = scan_fixture("guard_across_blocking.rs", FileClass::Other);
    assert!(other.is_empty(), "{other:#?}");
}

#[test]
fn swallowed_error_fixture_flags_exactly_the_marked_lines() {
    let (source, findings) = scan_fixture("swallowed_error.rs", FileClass::Lib);
    assert_matches_markers(&source, &findings, RuleKind::SwallowedError);
    // `?`-propagation, counted errors, the drain path, Path::join and the
    // test module are silent.
    assert_eq!(findings.len(), 3, "{findings:#?}");
    let (_, other) = scan_fixture("swallowed_error.rs", FileClass::Other);
    assert!(other.is_empty(), "{other:#?}");
}

#[test]
fn unsynced_store_write_fixture_flags_exactly_the_marked_lines() {
    let (source, findings) = scan_fixture("unsynced_store_write.rs", FileClass::Lib);
    assert_matches_markers(&source, &findings, RuleKind::UnsyncedStoreWrite);
    // Reads, read-only OpenOptions, the allow escape and the test module
    // are silent.
    assert_eq!(findings.len(), 4, "{findings:#?}");
    let (_, other) = scan_fixture("unsynced_store_write.rs", FileClass::Other);
    assert!(other.is_empty(), "{other:#?}");
}

#[test]
fn unbounded_channel_fixture_flags_exactly_the_marked_lines() {
    // The rule is path-scoped to the daemon crate, so label the fixture
    // as sherlockd source instead of using `scan_fixture`.
    let source = fixture("unbounded_channel.rs");
    let findings = scan_source(
        "crates/sherlockd/src/unbounded_channel.rs",
        &source,
        FileClass::Lib,
        &RuleKind::ALL,
    );
    assert_matches_markers(&source, &findings, RuleKind::UnboundedChannel);
    // The drained field, shed queue, retained handles, non-loop pushes,
    // String receiver, the allow escape and the test module are silent.
    let rule_hits = findings.iter().filter(|f| f.rule == RuleKind::UnboundedChannel).count();
    assert_eq!(rule_hits, 2, "{findings:#?}");
    // Outside the daemon crate the same source is out of scope.
    let elsewhere = scan_source("crates/core/src/x.rs", &source, FileClass::Lib, &RuleKind::ALL);
    assert!(!elsewhere.iter().any(|f| f.rule == RuleKind::UnboundedChannel), "{elsewhere:#?}");
    // Bin/bench/test files may accumulate freely.
    let other = scan_source(
        "crates/sherlockd/src/unbounded_channel.rs",
        &source,
        FileClass::Other,
        &RuleKind::ALL,
    );
    assert!(!other.iter().any(|f| f.rule == RuleKind::UnboundedChannel), "{other:#?}");
}

#[test]
fn unbounded_retry_fixture_flags_exactly_the_marked_lines() {
    let (source, findings) = scan_fixture("unbounded_retry.rs", FileClass::Lib);
    assert_matches_markers(&source, &findings, RuleKind::UnboundedRetry);
    // The attempt-counted backoff, deadline-capped drain, shutdown-polled
    // accept loop, `for` loops, sleepless spins, the allow escape and the
    // test module are silent.
    let rule_hits = findings.iter().filter(|f| f.rule == RuleKind::UnboundedRetry).count();
    assert_eq!(rule_hits, 2, "{findings:#?}");
    // Bin/bench/test files may poll freely.
    let (_, other) = scan_fixture("unbounded_retry.rs", FileClass::Other);
    assert!(!other.iter().any(|f| f.rule == RuleKind::UnboundedRetry), "{other:#?}");
}

#[test]
fn row_wise_hot_path_fixture_flags_exactly_the_marked_lines() {
    // The rule is path-scoped to the columnar kernel files, so label the
    // fixture as one of them instead of using `scan_fixture`.
    let source = fixture("row_wise_hot_path.rs");
    let findings =
        scan_source("crates/core/src/predicate.rs", &source, FileClass::Lib, &RuleKind::ALL);
    assert_matches_markers(&source, &findings, RuleKind::RowWiseHotPath);
    // The columnar view access, similar names, the allow escape and the
    // test module are silent.
    let rule_hits = findings.iter().filter(|f| f.rule == RuleKind::RowWiseHotPath).count();
    assert_eq!(rule_hits, 2, "{findings:#?}");
    // Outside the kernel files — notably the scalar shim — the same source
    // is out of scope.
    for path in ["crates/core/src/scalar.rs", "crates/core/src/diagnose.rs"] {
        let elsewhere = scan_source(path, &source, FileClass::Lib, &RuleKind::ALL);
        assert!(!elsewhere.iter().any(|f| f.rule == RuleKind::RowWiseHotPath), "{elsewhere:#?}");
    }
    // Bin/bench/test files may use the row-wise API.
    let other =
        scan_source("crates/core/src/predicate.rs", &source, FileClass::Other, &RuleKind::ALL);
    assert!(!other.iter().any(|f| f.rule == RuleKind::RowWiseHotPath), "{other:#?}");
}

#[test]
fn github_annotations_escape_workflow_metacharacters() {
    let f = Finding {
        rule: RuleKind::PanicPath,
        path: "crates/a,b/src/x:y.rs".to_string(),
        line: 7,
        snippet: "let x = 100%;".to_string(),
        message: "multi\nline".to_string(),
        trace: Vec::new(),
    };
    assert_eq!(
        f.render_github(),
        "::error file=crates/a%2Cb/src/x%3Ay.rs,line=7,\
         title=sherlock-lint[panic-path]::multi%0Aline — `let x = 100%25;`"
    );
}

/// The full workspace scan must be byte-identical across runs (ISSUE PR 5
/// acceptance): stable file order, stable `(path, line, rule-name)` finding
/// order, no iteration-order leaks in the engine itself.
#[test]
fn workspace_scan_output_is_deterministic() {
    let here = std::env::current_dir().unwrap();
    let root = find_workspace_root(&here).expect("workspace root");
    let config = ScanConfig::all_rules(root);
    let render = |findings: &[Finding]| -> String {
        findings.iter().map(|f| format!("{}\n{}\n", f.render(), f.render_github())).collect()
    };
    let first = scan_workspace(&config).expect("scan 1");
    let second = scan_workspace(&config).expect("scan 2");
    assert_eq!(render(&first), render(&second));
    // Sanity: the scan actually visited the workspace.
    assert!(!first.is_empty(), "expected at least the baselined findings");
}

#[test]
fn allow_escapes_suppress_only_the_named_rule() {
    let (source, findings) = scan_fixture("allow_escape.rs", FileClass::Lib);
    assert_matches_markers(&source, &findings, RuleKind::PanicPath);
    // wrong_rule (escape names nan-unsafe) + unescaped.
    assert_eq!(findings.len(), 2, "{findings:#?}");
}

#[test]
fn deny_header_requires_the_clippy_policy() {
    let with = "#![warn(missing_docs)]\n\
                #![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]\n\
                pub fn f() {}\n";
    assert!(check_deny_header("crates/x/src/lib.rs", with).is_none());
    let without = "#![warn(missing_docs)]\npub fn f() {}\n";
    let finding = check_deny_header("crates/x/src/lib.rs", without).expect("must flag");
    assert_eq!(finding.rule, RuleKind::DenyHeader);
    assert_eq!(finding.line, 1);
}

#[test]
fn baseline_absorbs_fixture_findings_across_line_drift() {
    let (source, findings) = scan_fixture("panic_path.rs", FileClass::Lib);
    let dir = std::env::temp_dir().join(format!("sherlock-lint-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("baseline.txt");
    Baseline::write(&path, &findings).unwrap();
    let baseline = Baseline::load(&path).unwrap();

    // Shift every line down by injecting a comment block up top; the
    // snippet-keyed baseline still absorbs everything.
    let shifted_src = format!("// pad\n// pad\n// pad\n{source}");
    let shifted = scan_source("panic_path.rs", &shifted_src, FileClass::Lib, &RuleKind::ALL);
    let diff = baseline.diff(&shifted);
    assert!(diff.new.is_empty(), "{:#?}", diff.new);
    assert_eq!(diff.baselined, findings.len());
    assert_eq!(diff.stale, 0);

    // A brand-new violation is not absorbed.
    let grown_src = format!("{shifted_src}\npub fn extra(v: Option<u8>) -> u8 {{ v.unwrap() }}\n");
    let grown = scan_source("panic_path.rs", &grown_src, FileClass::Lib, &RuleKind::ALL);
    let diff = baseline.diff(&grown);
    assert_eq!(diff.new.len(), 1, "{:#?}", diff.new);
}

#[test]
fn taint_determinism_fixture_matches_markers() {
    let (source, findings) = scan_fixture("taint_determinism.rs", FileClass::Lib);
    assert_matches_markers(&source, &findings, RuleKind::TaintDeterminism);
}

#[test]
fn taint_determinism_findings_carry_source_to_sink_traces() {
    use sherlock_lint::rules::TraceKind;
    let (_, findings) = scan_fixture("taint_determinism.rs", FileClass::Lib);
    let taint: Vec<&Finding> =
        findings.iter().filter(|f| f.rule == RuleKind::TaintDeterminism).collect();
    assert!(!taint.is_empty());
    for f in taint {
        let last = f.trace.last().unwrap_or_else(|| panic!("empty trace: {f:#?}"));
        assert_eq!(last.kind, TraceKind::Sink, "{f:#?}");
        assert!(
            f.trace.iter().any(|s| s.kind == TraceKind::SanitizerMiss),
            "no sanitizer-miss hop: {f:#?}"
        );
    }
}

#[test]
fn unisolated_panic_fixture_matches_markers() {
    let (source, findings) = scan_fixture("unisolated_panic.rs", FileClass::Lib);
    assert_matches_markers(&source, &findings, RuleKind::UnisolatedPanic);
}

#[test]
fn unisolated_panic_findings_carry_entry_to_panic_traces() {
    use sherlock_lint::rules::TraceKind;
    let (_, findings) = scan_fixture("unisolated_panic.rs", FileClass::Lib);
    let panics: Vec<&Finding> =
        findings.iter().filter(|f| f.rule == RuleKind::UnisolatedPanic).collect();
    assert!(!panics.is_empty());
    for f in panics {
        let first = f.trace.first().unwrap_or_else(|| panic!("empty trace: {f:#?}"));
        assert_eq!(first.kind, TraceKind::Entry, "{f:#?}");
        assert_eq!(f.trace.last().map(|s| s.kind), Some(TraceKind::Panic), "{f:#?}");
    }
}

/// The taint layer only certifies library code: tests and binaries may
/// panic and may be nondeterministic.
#[test]
fn taint_rules_skip_non_lib_files() {
    for fixture_name in ["taint_determinism.rs", "unisolated_panic.rs"] {
        let (_, findings) = scan_fixture(fixture_name, FileClass::Other);
        assert!(
            findings.iter().all(
                |f| f.rule != RuleKind::TaintDeterminism && f.rule != RuleKind::UnisolatedPanic
            ),
            "{fixture_name}: {findings:#?}"
        );
    }
}
