//! Fixture: bare thread spawns in library code must route through the
//! core execution layer (`par_map_indexed` / `ExecPolicy`).

pub fn fans_out_by_hand(items: &[u32]) -> u32 {
    let handle = std::thread::spawn(|| 1); // REAL
    std::thread::scope(|s| { // REAL
        // Handle/scope *methods* are not path spawns; only the entry
        // points are policed.
        s.spawn(|| ());
    });
    thread::spawn(background_worker); // REAL
    handle.join().unwrap_or(0)
}

fn background_worker() {}

pub fn sanctioned_site() {
    // sherlock-lint: allow(raw-spawn): pretend this is the exec layer
    std::thread::scope(|_s| {});
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_spawn_freely() {
        std::thread::spawn(|| ()).join().unwrap();
    }
}
