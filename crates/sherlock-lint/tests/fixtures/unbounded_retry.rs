//! Fixture for `unbounded-retry`: sleep-in-loop retry patterns with no
//! attempt bound or deadline poll. Library-wide scope — a retry loop that
//! can spin forever hangs a drain no matter which crate it lives in.
//! Lines carrying the REAL marker must be flagged; everything else must not.

/// The classic hang: retry a save forever on a persistent fault.
fn persist_forever(store: &Store, repo: &Repo) {
    loop {
        if store.save(repo).is_ok() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10)); // REAL
    }
}

/// A `while` that polls a condition the loop itself never bounds.
fn wait_for_peer(peer: &Peer) {
    while !peer.is_ready() {
        thread::sleep(POLL_INTERVAL); // REAL
    }
}

/// Attempt-counted backoff: the daemon's save pattern, clean.
fn persist_bounded(store: &Store, repo: &Repo) {
    let mut attempts = 0;
    loop {
        attempts += 1;
        if store.save(repo).is_ok() || attempts >= MAX_ATTEMPTS {
            break;
        }
        std::thread::sleep(backoff_for(attempts));
    }
}

/// Deadline-capped polling: the drain pattern, clean.
fn drain_queue(queue: &Queue, deadline: Instant) {
    loop {
        if queue.is_empty() || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A shutdown-flag poll is a service loop, not a runaway retry: clean.
fn accept_loop(listener: &Listener, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(conn) => handle(conn),
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// `for` loops are bounded by their iterator: clean even with a sleep.
fn staged_restart(services: &[Service]) {
    for service in services {
        service.restart();
        std::thread::sleep(STAGGER);
    }
}

/// A loop that never sleeps is not a retry loop (other rules own spins).
fn busy_reduce(items: &mut Stack) -> u64 {
    let mut acc = 0;
    while let Some(item) = items.pop() {
        acc += item.weight();
    }
    acc
}

/// The escape documents a loop bounded by something the rule cannot see.
fn wait_externally_bounded(gate: &Gate) {
    while gate.is_closed() {
        // sherlock-lint: allow(unbounded-retry): the gate's watchdog kills us
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[cfg(test)]
mod tests {
    /// Test code may poll freely — the harness has its own timeout.
    fn spin_until_ready(peer: &Peer) {
        while !peer.is_ready() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}
