//! Fixture: mutex pairs taken in opposite orders on different call paths
//! can deadlock. The inverted path here spans two functions, so catching
//! it requires the call-graph summary, not just per-function facts.

pub fn forward(d: &Daemon) {
    let tenants = lock(&d.tenants);
    let queue = lock(&d.queue); // REAL
    route(&tenants, &queue);
}

pub fn backward_outer(d: &Daemon) {
    let queue = lock(&d.queue);
    backward_inner(d); // REAL
    drop(queue);
}

fn backward_inner(d: &Daemon) {
    let tenants = lock(&d.tenants);
    note(&tenants);
}

// A pair taken in the same order everywhere never fires.
pub fn consistent_one(d: &Daemon) {
    let models = lock(&d.models);
    let stats = lock(&d.stats);
    publish(&models, &stats);
}

pub fn consistent_two(d: &Daemon) {
    let models = lock(&d.models);
    let stats = lock(&d.stats);
    publish(&models, &stats);
}

// Dropping the first lock before taking the second forms no ordering
// pair, so this reversed sequence is fine.
pub fn dropped_before_second(d: &Daemon) {
    let queue = lock(&d.queue);
    drop(queue);
    let tenants = lock(&d.tenants);
    note(&tenants);
}
