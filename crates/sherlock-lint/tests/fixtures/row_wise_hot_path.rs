//! Fixture: per-cell `value()` dispatch inside a columnar kernel file.
//! The hot paths take typed column views from a `ColumnarSnapshot`; a
//! row-wise access creeping back in reintroduces the per-cell enum match
//! the columnar rewrite removed. Scanned as `crates/core/src/predicate.rs`
//! by the integration test (the rule is path-scoped).

pub fn selectivity_row_wise(dataset: &Dataset, rows: &[usize], attr_id: usize) -> f64 {
    let mut hits = 0usize;
    for &row in rows {
        match dataset.value(row, attr_id) { // REAL
            Value::Num(v) => {
                if v > 0.0 {
                    hits += 1;
                }
            }
            Value::Cat(_) => {}
        }
    }
    hits as f64 / rows.len().max(1) as f64
}

pub fn turbofish_is_still_row_wise(dataset: &Dataset) -> f64 {
    dataset.value::<f64>(0, 1) // REAL
}

pub fn columnar_is_the_way(snapshot: &ColumnarSnapshot<'_>, attr_id: usize) -> f64 {
    let Some(view) = snapshot.numeric(attr_id) else { return 0.0 };
    view.iter().filter(|v| v.is_finite()).sum()
}

pub fn similar_names_are_not_the_accessor(map: &M, entry: &Entry) {
    let _ = map.values();
    let _ = entry.key_value();
    let _ = value(0, 1);
}

pub fn sanctioned_site(dataset: &Dataset) -> Value {
    // sherlock-lint: allow(row-wise-hot-path): cold error-reporting path
    dataset.value(0, 0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_go_row_wise() {
        let _ = dataset.value(3, 2);
    }
}
