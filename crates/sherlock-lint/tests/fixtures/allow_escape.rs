//! Fixture: per-line and file-level allow escapes.

pub fn same_line(v: Option<u32>) -> u32 {
    v.unwrap() // sherlock-lint: allow(panic-path): fixture shows same-line escape
}

pub fn line_above(v: Option<u32>) -> u32 {
    // sherlock-lint: allow(panic-path): fixture shows line-above escape
    v.unwrap()
}

pub fn wrong_rule(v: Option<u32>) -> u32 {
    // sherlock-lint: allow(nan-unsafe): names the wrong rule, so it does not suppress
    v.unwrap() // REAL: must be reported despite the escape above
}

pub fn unescaped(v: Option<u32>) -> u32 {
    v.unwrap() // REAL: must be reported on this line
}
