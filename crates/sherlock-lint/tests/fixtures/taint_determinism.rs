//! Fixture: the `taint-determinism` rule — a nondeterministic value
//! (entropy RNG, wall clock, hash iteration order, thread id, pointer
//! address) flowing into a serialized output. Markers sit on the *sink*
//! lines: findings anchor to the construction or persisting call, not to
//! the source. Unmarked fns are controls for each sanitizer form.

use std::collections::{BTreeMap, HashMap};

// Direct flow: entropy-seeded RNG into an `Explanation` construction.
pub fn tag_explanation() -> Explanation {
    let mut rng = thread_rng();
    let nonce = rng.next_u64();
    Explanation { cause: nonce } // REAL taint-determinism
}

// Wall clock serialized into a `Response` — nothing in the statement
// looks like deadline arithmetic, so the exemption does not apply.
pub fn stamp(body: &str) -> Response {
    let when = SystemTime::now();
    Response::Stats { body, when } // REAL taint-determinism
}

// Control: deadline arithmetic is exempt — the clock value only feeds a
// duration computation, never the serialized payload.
pub fn armed(&self) -> Response {
    let deadline = Instant::now() + self.budget;
    let ok = check(deadline);
    Response::Ready { ok }
}

// Hash iteration order serialized without a sort.
pub fn ranked(causes: &HashMap<String, f64>) -> Explanation {
    let names: Vec<String> = causes.keys().cloned().collect();
    Explanation { causes: names } // REAL taint-determinism
}

// Control: a statement-level sort between the definition and the sink
// cleans the binding at the use site.
pub fn ranked_sorted(causes: &HashMap<String, f64>) -> Explanation {
    let mut names: Vec<String> = causes.keys().cloned().collect();
    names.sort();
    Explanation { causes: names }
}

// Control: an ordered-container annotation canonicalizes on its own.
pub fn canonical(causes: &HashMap<String, f64>) -> Explanation {
    let ordered: BTreeMap<String, f64> = causes.iter().map(clone_pair).collect();
    Explanation { causes: render(&ordered) }
}

// Interprocedural: the callee's fixed-point summary carries RNG taint
// into the caller's sink.
fn fresh_nonce() -> u64 {
    thread_rng().next_u64()
}

pub fn labeled() -> Explanation {
    Explanation { cause: fresh_nonce() } // REAL taint-determinism
}

// Control: a seed-derived stream inside the callee clears its summary.
fn derived_nonce() -> u64 {
    let raw = thread_rng().next_u64();
    splitmix64(raw)
}

pub fn reproducible() -> Explanation {
    Explanation { cause: derived_nonce() }
}

// Interprocedural sink: `persist` hands its argument straight to `save`,
// so a tainted argument is a finding at the *call site*.
fn persist(record: &Record, store: &ModelStore) {
    store.save(record);
}

pub fn export(store: &ModelStore) {
    let id = thread_rng().next_u64();
    persist(&id, store); // REAL taint-determinism
}

// Thread identity persisted through a direct sink call.
pub fn note_worker(store: &ModelStore) {
    let who = thread::current();
    store.save(who); // REAL taint-determinism
}

// Pointer formatting is an address source.
pub fn debug_key(node: &Node) -> Explanation {
    let key = format!("{:p}", node);
    Explanation { cause: key } // REAL taint-determinism
}
