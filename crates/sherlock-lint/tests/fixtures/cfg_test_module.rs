//! Fixture: `#[cfg(test)]` items are exempt from panic-path; the
//! surrounding non-test code is not.

pub fn before(v: Option<u32>) -> u32 {
    v.unwrap() // REAL: must be reported on this line
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_here() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let s = vec![1, 2, 3];
        let _ = s[0];
        if false {
            panic!("test-only panic");
        }
    }
}

#[allow(dead_code)]
#[cfg(test)]
mod stacked_attrs {
    pub fn also_exempt(v: Option<u32>) -> u32 {
        v.expect("fine in cfg(test)")
    }
}

#[cfg(not(test))]
mod shipped {
    pub fn live(v: Option<u32>) -> u32 {
        v.unwrap() // REAL: cfg(not(test)) is shipped code, must be reported
    }
}

pub fn after(v: Option<u32>) -> u32 {
    v.expect("boom") // REAL: must be reported on this line
}
