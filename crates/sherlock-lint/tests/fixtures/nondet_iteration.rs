//! Fixture: iterating a `HashMap`/`HashSet` into order-sensitive output
//! must sort first, collect into an ordered/order-free container, or
//! reduce with an order-insensitive fold.

use std::collections::{BTreeSet, HashMap, HashSet};

pub fn leaks_map_order(m: &HashMap<String, u64>) -> Vec<String> {
    m.keys().cloned().collect() // REAL
}

pub fn leaks_set_order(s: &HashSet<u32>, out: &mut Vec<u32>) {
    for x in s { // REAL
        out.push(*x);
    }
}

pub fn sorted_copy_is_fine(m: &HashMap<String, u64>) -> Vec<String> {
    let mut keys: Vec<String> = m.keys().cloned().collect();
    keys.sort();
    keys
}

pub fn order_free_uses_are_fine(m: &HashMap<String, u64>, acc: &mut HashSet<String>) {
    let _total: u64 = m.values().copied().sum();
    let _ordered: BTreeSet<String> = m.keys().cloned().collect();
    acc.extend(m.keys().cloned());
}

pub fn sanctioned_site(m: &HashMap<String, u64>) -> u64 {
    let mut acc = 0;
    // sherlock-lint: allow(nondeterministic-iteration): commutative sum
    for (_k, v) in m {
        acc += v;
    }
    acc
}
