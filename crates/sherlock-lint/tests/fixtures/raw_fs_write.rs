//! Fixture: bare `fs::write` of artifacts in library code must route
//! through the crash-safe store (`dbsherlock_core::store::ModelStore`).

pub fn persists_by_hand(path: &str, body: &str) {
    let _ = std::fs::write(path, body); // REAL
    let _ = fs::write(path, body); // REAL
}

pub fn reading_and_writer_methods_are_fine(path: &str, buf: &[u8]) {
    let _ = std::fs::read(path);
    let _ = std::fs::rename(path, "elsewhere");
    let mut sink: Vec<u8> = Vec::new();
    use std::io::Write;
    let _ = sink.write(buf);
    let _ = sink.write_all(buf);
}

pub fn sanctioned_site(path: &str) {
    // sherlock-lint: allow(raw-fs-write): pretend this is the store module
    let _ = std::fs::write(path, b"checksummed elsewhere");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_write_freely() {
        std::fs::write("/tmp/scratch", b"ok").unwrap();
    }
}
