//! Fixture: swapping the process-global panic hook anywhere but
//! `chaos::quiet_panics` races parallel tests and leaks the swap on
//! early return.

pub fn silences_by_hand() {
    let prior = std::panic::take_hook(); // REAL
    std::panic::set_hook(Box::new(|_| {})); // REAL
    run_quietly();
    std::panic::set_hook(prior); // REAL
}

pub fn quiet_panics(f: impl FnOnce()) {
    // The sanctioned wrapper itself must hold the only raw hook calls.
    let prior = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    f();
    std::panic::set_hook(prior);
}

pub fn unrelated_method_named_set_hook(reg: &mut Registry) {
    reg.set_hook(Hook::default());
}

pub fn sanctioned_site() {
    // sherlock-lint: allow(raw-panic-hook): fixture-local justification
    std::panic::set_hook(Box::new(|_| {}));
}
