//! Fixture: errors from fallible store/net/protocol writes must be
//! counted, logged, or propagated — never silently discarded.

pub fn discarded_write(w: &mut TcpStream, frame: &[u8]) {
    let _ = w.write_all(frame); // REAL
}

pub fn ok_swallows_flush(w: &mut TcpStream) {
    w.flush().ok(); // REAL
}

// The fallible call lives in a `.map` closure; the swallow happens
// downstream in the same statement. The finding lands on the `.ok()`.
pub fn swallow_in_downstream_closure(frames: &[Frame], w: &mut Writer) -> Vec<()> {
    frames
        .iter()
        .map(|frame| w.write_all(frame.as_bytes()))
        .filter_map(|r| r.ok()) // REAL
        .collect()
}

pub fn propagates(w: &mut TcpStream, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

pub fn counted(w: &mut TcpStream, frame: &[u8], dropped: &AtomicU64) {
    if w.write_all(frame).is_err() {
        dropped.fetch_add(1, Ordering::Relaxed);
    }
}

// Shutdown paths may legitimately best-effort their final writes.
pub fn drain_responses(w: &mut TcpStream) {
    let _ = w.flush();
}

// `Path::join` takes an argument; only the nullary thread `join()` is a
// swallowable fallible call.
pub fn path_join_is_infallible(dir: &Path) -> PathBuf {
    dir.join("model.bin")
}

#[cfg(test)]
mod tests {
    #[test]
    fn best_effort_in_tests_is_fine() {
        let _ = writer().write_all(b"x");
    }
}
