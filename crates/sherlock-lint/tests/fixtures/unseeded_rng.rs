//! Fixture: one specimen of every unseeded-rng pattern.

pub fn thread_rng_site() -> u32 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn from_entropy_site() -> u32 {
    let mut rng = rand::rngs::StdRng::from_entropy();
    rng.gen()
}

pub fn free_fn_sites() -> (u32, f64) {
    (rand::random(), rand::rng().random())
}

pub fn fine(seed: u64) -> u32 {
    // Explicitly seeded construction is the sanctioned pattern.
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    rng.random()
}
