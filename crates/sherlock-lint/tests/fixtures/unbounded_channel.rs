//! Fixture for `unbounded-channel`: container growth in daemon loops.
//! Scanned with a `crates/sherlockd/…` path label — the rule is scoped to
//! the daemon crate, where loops are fed by sockets, not finite inputs.
//! Lines carrying the REAL marker must be flagged; everything else must not.

struct Conn {
    pending: std::collections::VecDeque<Event>,
    graveyard: Vec<Event>,
}

impl Conn {
    /// A field that grows per chunk but drains in a sibling method: clean.
    fn ingest(&mut self, chunks: Chunks) {
        for chunk in chunks {
            self.pending.push_back(parse(chunk));
        }
    }

    fn next(&mut self) -> Option<Event> {
        self.pending.pop_front()
    }

    /// A field nobody ever drains, growing per iteration: the leak.
    fn bury(&mut self, chunks: Chunks) {
        for chunk in chunks {
            self.graveyard.push(parse(chunk)); // REAL
        }
    }
}

/// A local accumulator fed by a connection loop with no bound.
fn serve(lines: Lines) {
    let mut backlog: Vec<String> = Vec::new();
    for line in lines {
        backlog.push(line); // REAL
    }
}

/// Shed-oldest before growing: the daemon's enqueue pattern, clean.
fn pump(events: Events) {
    let mut queue = std::collections::VecDeque::new();
    loop {
        if queue.len() >= MAX_PENDING {
            queue.pop_front();
        }
        queue.push_back(next_event());
    }
}

/// Pruning with `retain` bounds the accept loop's handle list: clean.
fn accept(listener: Listener) {
    let mut handles = Vec::new();
    while running() {
        handles.push(spawn_conn(&listener));
        handles.retain(|h| !h.is_finished());
    }
}

/// Growth outside any loop is one bounded allocation, not a channel.
fn fixed() -> Vec<u8> {
    let mut v = Vec::new();
    v.push(1);
    v.push(2);
    v
}

/// `String` (and other non-Vec/VecDeque receivers) are out of scope.
fn render(chars: Chars) -> String {
    let mut out = String::new();
    for c in chars {
        out.push(c);
    }
    out
}

/// The escape documents a genuinely bounded accumulator.
fn snapshot(rows: Rows) -> Vec<u64> {
    let mut seqs = Vec::with_capacity(rows.len());
    for row in rows {
        // sherlock-lint: allow(unbounded-channel): one entry per buffered row
        seqs.push(row.seq);
    }
    seqs
}

#[cfg(test)]
mod tests {
    /// Test code may accumulate freely.
    fn collect(lines: Lines) {
        let mut all = Vec::new();
        for line in lines {
            all.push(line);
        }
    }
}
