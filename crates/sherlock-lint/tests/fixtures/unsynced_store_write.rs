//! Fixture: filesystem mutation outside `store.rs` tears artifacts when
//! the process dies mid-operation; the crash-safe
//! `dbsherlock_core::store::ModelStore` is the only sanctioned writer.

use std::fs::{File, OpenOptions};

pub fn mutates_by_hand(p: &Path, q: &Path) {
    let _ = std::fs::rename(p, q); // REAL
    let _ = std::fs::remove_file(p); // REAL
    let _ = File::create(p); // REAL
    let _ = OpenOptions::new().append(true).open(p); // REAL
}

pub fn reads_are_fine(p: &Path) {
    let _ = std::fs::read_to_string(p);
    let _ = File::open(p);
    let _ = OpenOptions::new().read(true).open(p);
}

pub fn sanctioned_site(p: &Path) {
    // sherlock-lint: allow(unsynced-store-write): recovery scratch file, checksummed on read
    let _ = std::fs::remove_file(p);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_mutate_freely() {
        let _ = std::fs::remove_file("/tmp/scratch");
    }
}
