//! Fixture: call-graph edges must survive path qualification. Every
//! caller here reaches its callee through a qualified path (`Self::`,
//! `crate::`, a `prelude` re-export) while a `use … as …` alias shadows
//! the bare callee name — resolving the qualified call through the
//! import-alias map would drop the edge, silencing the inversion findings
//! and firing the delegating loops.

use crate::util::spare as take_tenants_then_note;
use crate::util::noop as checked_transform;
use crate::util::noop2 as poll_step;

pub struct Daemon;

impl Daemon {
    pub fn forward(d: &Daemon) {
        let tenants = lock(&d.tenants);
        let queue = lock(&d.queue); // REAL lock-order-inversion
        route(&tenants, &queue);
    }

    // The inverted path spans a `Self::`-qualified call; the edge must go
    // to the literal `take_tenants_then_note`, not through the alias.
    pub fn backward_outer(d: &Daemon) {
        let queue = lock(&d.queue);
        Self::take_tenants_then_note(d); // REAL lock-order-inversion
        drop(queue);
    }

    // Module-qualified free-helper acquisition (`sync::lock(`) counts the
    // same as the bare helper call.
    fn take_tenants_then_note(d: &Daemon) {
        let tenants = sync::lock(&d.tenants);
        note(&tenants);
    }
}

// A `crate::`-qualified callee that polls the budget: the loop delegates,
// so it stays silent — but only if the edge keeps the literal name.
pub fn delegating_loop(parts: &[Part], budget: &ArmedBudget) -> Result<(), Stop> {
    for part in parts {
        crate::stages::checked_transform(part, budget)?;
    }
    Ok(())
}

fn checked_transform(part: &Part, budget: &ArmedBudget) -> Result<Out, Stop> {
    budget.check("transform")?;
    Ok(expensive_transform(part))
}

// Same shape through a `prelude` re-export.
pub fn prelude_delegating_loop(parts: &[Part], budget: &ArmedBudget) -> Result<(), Stop> {
    for part in parts {
        prelude::poll_step(part, budget)?;
    }
    Ok(())
}

fn poll_step(part: &Part, budget: &ArmedBudget) -> Result<Out, Stop> {
    budget.check("step")?;
    Ok(expensive_transform(part))
}

// Control: a qualified edge to a non-polling callee must still fire —
// qualification is not a blanket waiver.
pub fn qualified_non_polling(parts: &[Part], budget: &ArmedBudget) {
    for part in parts { // REAL budget-blind-loop
        crate::stages::log_step(part, budget);
    }
}

fn log_step(part: &Part, budget: &ArmedBudget) {
    note(part);
}
