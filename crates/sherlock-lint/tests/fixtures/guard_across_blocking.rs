//! Fixture: a live `MutexGuard` spanning a blocking call pins every
//! thread waiting on that lock behind one stalled peer.

pub fn response_write_holds_guard(w: &Mutex<TcpStream>, frame: &[u8]) {
    let mut guard = lock(w);
    guard.write_all(frame); // REAL
}

pub fn sleep_with_guard(d: &Daemon) {
    let queue = lock(&d.queue);
    std::thread::sleep(POLL); // REAL
    drop(queue);
}

// Rendering under the lock, then writing after the drop, is the pattern
// the rule pushes toward.
pub fn drop_before_blocking(d: &Daemon, sock: &mut TcpStream) {
    let queue = lock(&d.queue);
    let frame = render(&queue);
    drop(queue);
    sock.write_all(&frame);
}

// A guard confined to an inner scope dies at its `}`.
pub fn inner_scope_releases(d: &Daemon, sock: &mut TcpStream) {
    let frame = {
        let queue = lock(&d.queue);
        render(&queue)
    };
    sock.write_all(&frame);
}

// A temporary consumed by the chained call drops at the `;`, so the
// later block happens lock-free.
pub fn consumed_probe_is_lock_free(d: &Daemon) {
    let depth = lock(&d.queue).len();
    std::thread::sleep(backoff(depth));
}

// Condvar waits release the guard atomically; they are not "blocking
// while holding".
pub fn condvar_wait_releases_atomically(d: &Daemon) {
    let mut queue = lock(&d.queue);
    while queue.is_empty() {
        queue = d.queue_cv.wait(queue);
    }
}
