//! Fixture: the `unisolated-panic` rule — panic sites reachable from a
//! certified entry point (`explain_batch`, `handle_line`, `ingest`,
//! `worker_loop`, …) with no isolation boundary on the path. Markers sit
//! on the panic-site lines. Unmarked panic sites are controls: either an
//! isolation wrapper shields them or no certified entry reaches them.

// Entry with a direct unisolated site.
pub fn explain_batch(&self, batches: &[Batch]) -> Vec<Explanation> {
    let first = batches.first().unwrap(); // REAL unisolated-panic
    route(first)
}

// One unisolated hop down the chain: explain_batch → route.
fn route(batch: &Batch) -> Vec<Explanation> {
    decode(batch).expect("decode failed") // REAL unisolated-panic
}

// Control: the entry's only panicking callee runs inside
// `try_par_map_indexed`, which converts worker panics into an Err.
pub fn worker_loop(&self, items: &[Item]) {
    let out = try_par_map_indexed(policy, "drain", items, |_, item| shield(item));
    drop(out);
}

fn shield(item: &Item) -> Step {
    item.decoded().unwrap()
}

// Control: `catch_unwind` isolates the strict parser, but the dispatch
// path below stays exposed.
pub fn handle_line(&mut self, line: &str) -> Response {
    let parsed = catch_unwind(|| parse_strict(line));
    match parsed {
        Ok(cmd) => dispatch(cmd),
        Err(_) => Response::Error,
    }
}

fn parse_strict(line: &str) -> Command {
    line.split(':').next().unwrap().into()
}

// Reached from `handle_line` outside any boundary.
fn dispatch(cmd: Command) -> Response {
    let handler = TABLE[cmd.index]; // REAL unisolated-panic
    handler(cmd)
}

// Two unisolated hops from the daemon entry: ingest → drain_frames →
// flush_frame.
pub fn ingest(&mut self, chunk: &[u8]) {
    self.buf.extend(chunk);
    drain_frames(&mut self.buf);
}

fn drain_frames(buf: &mut Vec<u8>) {
    while has_frame(buf) {
        flush_frame(buf);
    }
}

fn flush_frame(buf: &mut Vec<u8>) {
    let head = buf.first().copied().unwrap(); // REAL unisolated-panic
    emit(head);
}

// Control: a panic site in a fn no certified entry reaches is the
// token-level `panic-path` rule's business, not this rule's.
fn orphan_scratch(bytes: &[u8]) -> u8 {
    bytes[0]
}
