//! Fixture: one specimen of every panic-path pattern.

pub fn unwrap_site(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn expect_site(v: Option<u32>) -> u32 {
    v.expect("nope")
}

pub fn panic_site(flag: bool) {
    if flag {
        panic!("boom");
    }
}

pub fn unreachable_site(x: u8) -> u8 {
    match x {
        0 => 1,
        _ => unreachable!(),
    }
}

pub fn index_site(v: &[u32], m: &std::collections::HashMap<u32, u32>) -> u32 {
    v[3] + m[&7]
}

pub fn not_flagged(v: Option<u32>) -> u32 {
    // unwrap_or / unwrap_or_default / unwrap_or_else are all fine.
    v.unwrap_or(0) + v.unwrap_or_default() + v.unwrap_or_else(|| 1)
}
