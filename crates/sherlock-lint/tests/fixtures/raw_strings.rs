//! Lexer fixture: panicky-looking text inside raw strings must not fire,
//! while real calls after them still must.

pub fn raw_strings() -> String {
    // None of these are real calls — they live inside string literals.
    let a = r"x.unwrap() and panic!(now)";
    let b = r#"embedded "quote" then .expect("boom")"#;
    let c = r##"hash depth two: r#"inner"# .unwrap()"##;
    let d = "escaped \" quote then .unwrap()";
    format!("{a}{b}{c}{d}")
}

pub fn real_call_after_raw(v: Option<u32>) -> u32 {
    let _decoy = r##"a "# inside needs two hashes"##;
    v.unwrap() // REAL: must be reported on this line
}
