//! Fixture: one specimen of every nan-unsafe pattern.

pub fn float_eq(a: f64) -> bool {
    a == 0.5
}

pub fn float_ne(a: f64) -> bool {
    a != 0.0
}

pub fn nan_const_compare(a: f64) -> bool {
    a == f64::NAN
}

pub fn partial_cmp_unwrap(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap()
}

pub fn sort_with_partial_cmp(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

pub fn fine(v: &mut Vec<f64>, a: f64, b: f64) -> bool {
    // total_cmp and integer comparisons are all fine.
    v.sort_by(f64::total_cmp);
    let ints = 1 == 2;
    ints && a.total_cmp(&b).is_eq()
}
