//! Lexer fixture: nested block comments swallow panicky text; code after
//! the comment closes is live again.

/* outer /* inner .unwrap() */ still a comment: panic!("no") */
pub fn after_comments(v: Option<u8>) -> u8 {
    /* one more /* nested */ level */
    v.expect("boom") // REAL: must be reported on this line
}

// A line comment with .unwrap() and panic!() changes nothing.
pub fn clean() -> u8 {
    0
}
