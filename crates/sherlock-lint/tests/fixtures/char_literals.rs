//! Lexer fixture: char literals containing `"` or `[` must not desync the
//! lexer into treating following code as a string or an index expression.

pub fn chars(input: &str) -> usize {
    let quote = '"';
    let bracket = '[';
    let escaped = '\'';
    let newline = '\n';
    // A lifetime, to check `'a` is not parsed as an unterminated char.
    fn generic<'a>(s: &'a str) -> &'a str {
        s
    }
    let _ = generic(input);
    input.matches([quote, bracket, escaped, newline]).count()
}

pub fn real_index(v: &[u32]) -> u32 {
    let _ = '[';
    v[0] // REAL: slice indexing must be reported on this line
}
