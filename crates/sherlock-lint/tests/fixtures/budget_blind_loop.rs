//! Fixture: loops doing real work in a budget-carrying pipeline stage
//! must poll the budget (or cancel flag) so deadlines can interrupt them.

pub fn stage_without_polling(parts: &[Part], budget: &ArmedBudget) -> Vec<Out> {
    let mut out = Vec::new();
    for part in parts { // REAL
        out.push(expensive_transform(part));
    }
    out
}

pub fn stage_with_polling(parts: &[Part], budget: &ArmedBudget) -> Result<Vec<Out>, Stop> {
    let mut out = Vec::new();
    for part in parts {
        budget.check("stage")?;
        out.push(expensive_transform(part));
    }
    Ok(out)
}

pub fn local_cancel_flag_counts(parts: &[Part]) {
    let cancel = CancelFlag::new();
    while still_pending() { // REAL
        expensive_step();
    }
}

pub fn header_poll_counts(parts: &[Part]) {
    let cancel = CancelFlag::new();
    while !cancel.is_set() {
        expensive_step();
    }
}

pub fn collector_loops_are_trivial(slots: Vec<Out>, budget: &ArmedBudget) -> Vec<Out> {
    let mut out = Vec::new();
    for slot in slots {
        out.push(slot);
    }
    out
}

pub fn sanctioned_site(parts: &[Part], budget: &ArmedBudget) {
    // sherlock-lint: allow(budget-blind-loop): bounded to 3 parts by the caller
    for part in parts {
        expensive_transform(part);
    }
}

// Interprocedural: the loop itself never touches the handle, but the
// callee it delegates to polls the budget — that is enough.
pub fn polling_callee_in_reach(parts: &[Part], budget: &ArmedBudget) -> Result<(), Stop> {
    for part in parts {
        transform_with_budget(part, budget)?;
    }
    Ok(())
}

fn transform_with_budget(part: &Part, budget: &ArmedBudget) -> Result<Out, Stop> {
    budget.check("transform")?;
    Ok(expensive_transform(part))
}

// Merely passing the handle onward to a callee that never polls it does
// not count (the old file-wide mention heuristic accepted this).
pub fn passes_handle_without_polling(parts: &[Part], budget: &ArmedBudget) {
    for part in parts { // REAL
        log_step(part, budget);
    }
}

fn log_step(part: &Part, budget: &ArmedBudget) {
    note(part);
}
