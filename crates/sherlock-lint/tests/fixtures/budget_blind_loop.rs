//! Fixture: loops doing real work in a budget-carrying pipeline stage
//! must poll the budget (or cancel flag) so deadlines can interrupt them.

pub fn stage_without_polling(parts: &[Part], budget: &ArmedBudget) -> Vec<Out> {
    let mut out = Vec::new();
    for part in parts { // REAL
        out.push(expensive_transform(part));
    }
    out
}

pub fn stage_with_polling(parts: &[Part], budget: &ArmedBudget) -> Result<Vec<Out>, Stop> {
    let mut out = Vec::new();
    for part in parts {
        budget.check("stage")?;
        out.push(expensive_transform(part));
    }
    Ok(out)
}

pub fn local_cancel_flag_counts(parts: &[Part]) {
    let cancel = CancelFlag::new();
    while still_pending() { // REAL
        expensive_step();
    }
}

pub fn header_poll_counts(parts: &[Part]) {
    let cancel = CancelFlag::new();
    while !cancel.is_set() {
        expensive_step();
    }
}

pub fn collector_loops_are_trivial(slots: Vec<Out>, budget: &ArmedBudget) -> Vec<Out> {
    let mut out = Vec::new();
    for slot in slots {
        out.push(slot);
    }
    out
}

pub fn sanctioned_site(parts: &[Part], budget: &ArmedBudget) {
    // sherlock-lint: allow(budget-blind-loop): bounded to 3 parts by the caller
    for part in parts {
        expensive_transform(part);
    }
}
