//! Property-based tests for the flow layer.
//!
//! The CFG builder documents an exact edge-accounting model (one base
//! `end → exit` edge; an `if` chain with `k` arms adds `2k` edges plus a
//! fall-through when there is no `else`; every loop adds 4 edges; `break`
//! adds 1; a `match` with `k` braced arms adds `2k`). These tests decode
//! random byte tapes into arbitrarily nested branch/loop trees and check
//! that model — and that every node stays reachable from entry, the
//! invariant the dataflow engine's fixpoint rests on. The call-graph
//! property drives import resolution through generated grouped/renamed
//! `use` trees.

use proptest::prelude::*;
use sherlock_lint::flow::{build_cfg, Cfg, FileFlow, FlowIndex};
use sherlock_lint::lexer::lex;
use sherlock_lint::syntax::FileSyntax;

/// One structured statement of pseudo-Rust, nestable.
#[derive(Debug, Clone)]
enum Stmt {
    /// `work();`
    Call,
    /// `if cond { … }` (no else)
    If(Vec<Stmt>),
    /// `if cond { … } else { … }`
    IfElse(Vec<Stmt>, Vec<Stmt>),
    /// `loop { … [break;] }` — the flag appends a final `break;`
    Loop(Vec<Stmt>, bool),
    /// `while cond { … }`
    While(Vec<Stmt>),
    /// `match x { P0 => { … } … }` with 1–3 braced arms
    Match(Vec<Vec<Stmt>>),
}

/// Recursive-descent decode of a byte tape into a statement tree. An
/// exhausted tape degrades to plain calls, so every tape is valid.
fn next(tape: &[u8], pos: &mut usize) -> u8 {
    let b = tape.get(*pos).copied().unwrap_or(0);
    *pos += 1;
    b
}

fn decode_block(tape: &[u8], pos: &mut usize, depth: u32) -> Vec<Stmt> {
    let n = 1 + (next(tape, pos) % 2) as usize;
    (0..n).map(|_| decode_stmt(tape, pos, depth)).collect()
}

fn decode_stmt(tape: &[u8], pos: &mut usize, depth: u32) -> Stmt {
    if depth >= 3 || *pos >= tape.len() {
        return Stmt::Call;
    }
    match next(tape, pos) % 6 {
        0 => Stmt::Call,
        1 => Stmt::If(decode_block(tape, pos, depth + 1)),
        2 => {
            let then = decode_block(tape, pos, depth + 1);
            let other = decode_block(tape, pos, depth + 1);
            Stmt::IfElse(then, other)
        }
        3 => {
            let breaks = next(tape, pos) & 1 == 1;
            Stmt::Loop(decode_block(tape, pos, depth + 1), breaks)
        }
        4 => Stmt::While(decode_block(tape, pos, depth + 1)),
        _ => {
            let arms = 1 + (next(tape, pos) % 3) as usize;
            Stmt::Match((0..arms).map(|_| decode_block(tape, pos, depth + 1)).collect())
        }
    }
}

fn render(stmts: &[Stmt], out: &mut String) {
    for stmt in stmts {
        match stmt {
            Stmt::Call => out.push_str("work(); "),
            Stmt::If(body) => {
                out.push_str("if cond { ");
                render(body, out);
                out.push_str("} ");
            }
            Stmt::IfElse(then, other) => {
                out.push_str("if cond { ");
                render(then, out);
                out.push_str("} else { ");
                render(other, out);
                out.push_str("} ");
            }
            Stmt::Loop(body, breaks) => {
                out.push_str("loop { ");
                render(body, out);
                if *breaks {
                    out.push_str("break; ");
                }
                out.push_str("} ");
            }
            Stmt::While(body) => {
                out.push_str("while cond { ");
                render(body, out);
                out.push_str("} ");
            }
            Stmt::Match(arms) => {
                out.push_str("match x { ");
                for (i, arm) in arms.iter().enumerate() {
                    out.push_str(&format!("P{i} => {{ "));
                    render(arm, out);
                    out.push_str("} ");
                }
                out.push_str("} ");
            }
        }
    }
}

/// Edge count each construct contributes under the documented model.
fn expected_edges(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|stmt| match stmt {
            Stmt::Call => 0,
            // cur→arm, arm→join, plus the no-else fall-through cur→join.
            Stmt::If(body) => 3 + expected_edges(body),
            // cur→arm ×2, arm→join ×2.
            Stmt::IfElse(then, other) => 4 + expected_edges(then) + expected_edges(other),
            // cur→head, head→body, body_end→head, head→after (+ break).
            Stmt::Loop(body, breaks) => 4 + usize::from(*breaks) + expected_edges(body),
            Stmt::While(body) => 4 + expected_edges(body),
            // cur→arm and arm→join per arm.
            Stmt::Match(arms) => {
                2 * arms.len() + arms.iter().map(|a| expected_edges(a)).sum::<usize>()
            }
        })
        .sum()
}

fn cfg_of(source: &str) -> Cfg {
    let lexed = lex(source);
    let syn = FileSyntax::analyze(&lexed.tokens);
    let f = syn.fns.first().expect("fn parsed");
    let (open, _) = f.body.expect("body");
    build_cfg(&lexed.tokens, &syn, open).expect("cfg built")
}

proptest! {
    /// For any nest of branches and loops: the CFG's edge count matches
    /// the documented per-construct accounting exactly, and every node is
    /// reachable from entry.
    #[test]
    fn cfg_edges_match_branch_counts(tape in proptest::collection::vec(0u8..=255, 0..48)) {
        let mut pos = 0;
        let n = (next(&tape, &mut pos) % 4) as usize;
        let stmts: Vec<Stmt> = (0..n).map(|_| decode_stmt(&tape, &mut pos, 0)).collect();
        let mut body = String::new();
        render(&stmts, &mut body);
        let source = format!("fn f() {{ {body} }}");
        let cfg = cfg_of(&source);
        prop_assert_eq!(
            cfg.edge_count(),
            1 + expected_edges(&stmts),
            "source: {:?}",
            &source
        );
        prop_assert_eq!(
            cfg.reachable().len(),
            cfg.nodes.len(),
            "unreachable nodes in {:?}",
            &source
        );
    }

    /// Call-graph resolution must round-trip through grouped and renamed
    /// `use` imports: calling the local (possibly renamed) name records
    /// the *original* item in the caller's summary.
    #[test]
    fn call_graph_round_trips_renamed_imports(
        items in proptest::collection::vec(("[a-z]{1,5}", any::<bool>()), 1..5)
    ) {
        let named: Vec<(String, Option<String>)> = items
            .iter()
            .enumerate()
            .map(|(i, (stem, renamed))| {
                let orig = format!("f{i}_{stem}");
                let alias = if *renamed { Some(format!("r{i}_{stem}")) } else { None };
                (orig, alias)
            })
            .collect();
        let tree = named
            .iter()
            .map(|(orig, alias)| match alias {
                Some(alias) => format!("{orig} as {alias}"),
                None => orig.clone(),
            })
            .collect::<Vec<_>>()
            .join(", ");
        let calls = named
            .iter()
            .map(|(orig, alias)| format!("{}();", alias.as_deref().unwrap_or(orig)))
            .collect::<Vec<_>>()
            .join(" ");
        let source = format!("use crate::util::{{{tree}}};\nfn caller() {{ {calls} }}");
        let lexed = lex(&source);
        let syn = FileSyntax::analyze(&lexed.tokens);
        let mask = vec![false; lexed.tokens.len()];
        let flow = FileFlow::analyze(&lexed.tokens, &syn, &mask);
        let index = FlowIndex::from_file("mem.rs", &flow);
        let summary = index.summary("caller").expect("caller summary");
        for (orig, alias) in &named {
            prop_assert!(
                summary.calls.contains(orig),
                "call through {:?} did not resolve to {}; calls: {:?} (source {:?})",
                alias.as_deref().unwrap_or(orig),
                orig,
                &summary.calls,
                &source
            );
        }
    }
}
