//! Property-based tests for the taint layer.
//!
//! The taint lattice is a `u8` bitset whose join is `|` — monotone,
//! idempotent, commutative — and the interprocedural summary is the
//! least fixed point of a monotone transfer function over that lattice
//! (`returns(f) = (sources(f) ∨ ⋁ returns(callee)) ∧ ¬sanitized(f)`).
//! These tests check the algebraic laws directly, then decode random
//! byte tapes into little call graphs with sources and sanitizers
//! sprinkled in and check the real index against an independently
//! computed reference model: the fixed point must converge to the model,
//! re-finalizing must be idempotent, and adding a source to one function
//! must never shrink any function's summary.

use proptest::prelude::*;
use sherlock_lint::lexer::lex;
use sherlock_lint::syntax::FileSyntax;
use sherlock_lint::taint::{TaintIndex, TaintSet, ADDRESS, CLOCK, HASH_ORDER, RNG, THREAD_ID};

const TOP: TaintSet = RNG | CLOCK | HASH_ORDER | THREAD_ID | ADDRESS;

/// One generated function: which sources/sanitizers its body contains
/// and which sibling functions it calls.
#[derive(Debug, Clone)]
struct FnSpec {
    rng: bool,
    clock: bool,
    hash: bool,
    san_rng: bool,
    san_hash: bool,
    calls: Vec<usize>,
}

impl FnSpec {
    fn sources(&self) -> TaintSet {
        (if self.rng { RNG } else { 0 })
            | (if self.clock { CLOCK } else { 0 })
            | (if self.hash { HASH_ORDER } else { 0 })
    }

    fn sanitized(&self) -> TaintSet {
        (if self.san_rng { RNG } else { 0 }) | (if self.san_hash { HASH_ORDER } else { 0 })
    }
}

/// Recursive-descent tape decode, `flow_props.rs`-style: an exhausted
/// tape degrades to zero bytes, so every tape is a valid program.
fn next(tape: &[u8], pos: &mut usize) -> u8 {
    let b = tape.get(*pos).copied().unwrap_or(0);
    *pos += 1;
    b
}

fn decode_program(tape: &[u8]) -> Vec<FnSpec> {
    let mut pos = 0;
    let n = 1 + (next(tape, &mut pos) % 5) as usize;
    (0..n)
        .map(|_| {
            let flags = next(tape, &mut pos);
            let ncalls = (next(tape, &mut pos) % 3) as usize;
            let calls = (0..ncalls).map(|_| (next(tape, &mut pos) as usize) % n).collect();
            FnSpec {
                rng: flags & 1 != 0,
                clock: flags & 2 != 0,
                hash: flags & 4 != 0,
                san_rng: flags & 8 != 0,
                san_hash: flags & 16 != 0,
                calls,
            }
        })
        .collect()
}

/// Render the spec as the pseudo-Rust the real scanner sees. Statement
/// forms mirror the site-detection tables: `thread_rng()` is an entropy
/// source, a bare `SystemTime::now();` has no deadline hint in its
/// statement, `.keys()` on a `HashMap`-annotated binding is a hash-order
/// source, `seed_from_u64` / `.sort()` are the sanitizers.
fn render(specs: &[FnSpec]) -> String {
    let mut out = String::new();
    for (i, spec) in specs.iter().enumerate() {
        out.push_str(&format!("fn f{i}() {{ "));
        if spec.rng {
            out.push_str("thread_rng(); ");
        }
        if spec.clock {
            out.push_str("SystemTime::now(); ");
        }
        if spec.hash {
            out.push_str("let m: HashMap<u8, u8> = make(); m.keys(); ");
        }
        if spec.san_rng {
            out.push_str("seed_from_u64(9); ");
        }
        if spec.san_hash {
            out.push_str("keep.sort(); ");
        }
        for &c in &spec.calls {
            out.push_str(&format!("f{c}(); "));
        }
        out.push_str("} ");
    }
    out
}

fn index_of(source: &str) -> TaintIndex {
    let lexed = lex(source);
    let syn = FileSyntax::analyze(&lexed.tokens);
    let mask = vec![false; lexed.tokens.len()];
    TaintIndex::from_file("gen.rs", &lexed, &syn, &mask, &mask)
}

/// Independent fixed point over the spec (never looks at tokens).
fn reference_returns(specs: &[FnSpec]) -> Vec<TaintSet> {
    let mut ret: Vec<TaintSet> = specs.iter().map(|s| s.sources() & !s.sanitized()).collect();
    loop {
        let mut changed = false;
        for (i, s) in specs.iter().enumerate() {
            let mut set = s.sources();
            for &c in &s.calls {
                set |= ret.get(c).copied().unwrap_or(0);
            }
            set &= !s.sanitized();
            if set != ret[i] {
                ret[i] = set;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    ret
}

proptest! {
    /// The algebraic laws certification rests on: join is idempotent,
    /// commutative, associative, an upper bound of both operands, and
    /// has the empty set as identity — i.e. `(TaintSet, |)` is a
    /// bounded join-semilattice, so the fixed points below exist.
    #[test]
    fn join_is_a_semilattice(a in 0..=TOP, b in 0..=TOP, c in 0..=TOP) {
        prop_assert_eq!(a | a, a);
        prop_assert_eq!(a | b, b | a);
        prop_assert_eq!((a | b) | c, a | (b | c));
        prop_assert_eq!((a | b) & a, a); // a ⊑ a ∨ b
        prop_assert_eq!(a | 0, a);
    }

    /// For any generated call graph — cycles, self-calls, dead fns — the
    /// scanner's fixed point converges to the reference model computed
    /// from the spec alone, stays under ⊤, and re-finalizing the index
    /// changes nothing.
    #[test]
    fn summary_fixpoint_matches_reference_model(
        tape in proptest::collection::vec(0u8..=255, 0..32)
    ) {
        let specs = decode_program(&tape);
        let source = render(&specs);
        let mut index = index_of(&source);
        let expected = reference_returns(&specs);
        for (i, want) in expected.iter().enumerate() {
            let got = index.returns(&format!("f{i}"));
            prop_assert_eq!(got, *want, "f{}: got {:#b} want {:#b} (source {:?})",
                i, got, want, &source);
            prop_assert_eq!(got & !TOP, 0);
        }
        index.finalize();
        for (i, want) in expected.iter().enumerate() {
            prop_assert_eq!(index.returns(&format!("f{i}")), *want,
                "finalize() is not idempotent on f{} (source {:?})", i, &source);
        }
    }

    /// Monotonicity of the whole pipeline: forcing one extra source into
    /// `f0`'s body never shrinks *any* function's summary — the transfer
    /// function is monotone in sources, so the least fixed point can only
    /// grow.
    #[test]
    fn adding_a_source_never_shrinks_summaries(
        tape in proptest::collection::vec(0u8..=255, 0..32)
    ) {
        let specs = decode_program(&tape);
        let mut grown = specs.clone();
        grown[0].rng = true;
        let before = index_of(&render(&specs));
        let after = index_of(&render(&grown));
        for i in 0..specs.len() {
            let a = before.returns(&format!("f{i}"));
            let b = after.returns(&format!("f{i}"));
            prop_assert_eq!(a | b, b, "f{}: {:#b} ⋢ {:#b}", i, a, b);
        }
    }
}
