//! Filling the gaps between labeled partitions (paper §4.4).
//!
//! After filtering, the space holds blocks of `Normal` / `Abnormal`
//! partitions separated by `Empty` ones. Every `Empty` partition receives
//! the label of the nearer non-Empty side, with the distance to an
//! `Abnormal` neighbour multiplied by the anomaly distance multiplier `δ`
//! (so `δ > 1` pulls boundaries towards the abnormal side, making
//! predicates more specific). Ties go to `Normal`, consistent with the
//! specific-predicate bias of the default `δ = 10`.
//!
//! Special case: if **only Abnormal** partitions survive filtering, naive
//! filling would paint the whole domain abnormal and no predicate direction
//! could be determined. The paper anchors the partition containing the
//! *average attribute value over the normal-region tuples* as `Normal`
//! first, then fills.

use dbsherlock_telemetry::{stats, Dataset, Region};

use crate::partition::{PartitionLabel, PartitionSpace};

/// Fill gaps in `labels`, honouring the anomaly distance multiplier.
/// `dataset`/`attr_id`/`normal` supply the normal-region average for the
/// all-Abnormal special case.
pub fn fill_gaps(
    labels: &[PartitionLabel],
    delta: f64,
    dataset: &Dataset,
    attr_id: usize,
    space: &PartitionSpace,
    normal: &Region,
) -> Vec<PartitionLabel> {
    fill_gaps_view(labels, delta, dataset.numeric(attr_id).unwrap_or(&[]), space, normal)
}

/// [`fill_gaps`] over an already-resolved numeric slice (the snapshot
/// path). An empty slice disables the all-Abnormal anchoring, matching
/// the kind-mismatch behaviour of the dataset form.
pub fn fill_gaps_view(
    labels: &[PartitionLabel],
    delta: f64,
    values: &[f64],
    space: &PartitionSpace,
    normal: &Region,
) -> Vec<PartitionLabel> {
    let mut labels = labels.to_vec();
    let has_normal = labels.contains(&PartitionLabel::Normal);
    let has_abnormal = labels.contains(&PartitionLabel::Abnormal);
    if !has_abnormal {
        // Nothing to explain on this attribute; leave as-is (the extractor
        // will find no abnormal block).
        return labels;
    }
    if !has_normal {
        anchor_normal_average(&mut labels, values, space, normal);
    }
    fill(&labels, delta)
}

/// Label the partition containing the normal-region average as `Normal`,
/// regardless of its previous label (§4.4).
fn anchor_normal_average(
    labels: &mut [PartitionLabel],
    values: &[f64],
    space: &PartitionSpace,
    normal: &Region,
) {
    // `normal` may outlive the rows it was defined over (lossy repair
    // shrinks datasets), and surviving cells may be NaN: index defensively
    // and keep only finite values.
    let normal_values: Vec<f64> = normal
        .indices()
        .iter()
        .filter_map(|&r| values.get(r).copied())
        .filter(|v| v.is_finite())
        .collect();
    if normal_values.is_empty() {
        return;
    }
    let avg = stats::mean(&normal_values);
    if let Some(slot) = space.index_of_num(avg).and_then(|j| labels.get_mut(j)) {
        *slot = PartitionLabel::Normal;
    }
}

fn fill(labels: &[PartitionLabel], delta: f64) -> Vec<PartitionLabel> {
    let n = labels.len();
    // Distance (in partitions) to the closest non-Empty partition on each
    // side, and that partition's label.
    let mut left: Vec<Option<(usize, PartitionLabel)>> = vec![None; n];
    let mut last: Option<(usize, PartitionLabel)> = None;
    for j in 0..n {
        if labels[j] != PartitionLabel::Empty {
            last = Some((j, labels[j]));
        } else if let Some((pos, label)) = last {
            left[j] = Some((j - pos, label));
        }
    }
    let mut right: Vec<Option<(usize, PartitionLabel)>> = vec![None; n];
    let mut next: Option<(usize, PartitionLabel)> = None;
    for j in (0..n).rev() {
        if labels[j] != PartitionLabel::Empty {
            next = Some((j, labels[j]));
        } else if let Some((pos, label)) = next {
            right[j] = Some((pos - j, label));
        }
    }

    let weighted = |distance: usize, label: PartitionLabel| -> f64 {
        let d = distance as f64;
        if label == PartitionLabel::Abnormal {
            d * delta
        } else {
            d
        }
    };

    labels
        .iter()
        .enumerate()
        .map(|(j, &label)| {
            if label != PartitionLabel::Empty {
                return label;
            }
            match (left[j], right[j]) {
                (None, None) => PartitionLabel::Empty,
                (Some((_, l)), None) | (None, Some((_, l))) => l,
                (Some((_, ll)), Some((_, lr))) if ll == lr => ll,
                (Some((dl, ll)), Some((dr, lr))) => {
                    let wl = weighted(dl, ll);
                    let wr = weighted(dr, lr);
                    if wl < wr {
                        ll
                    } else if wr < wl {
                        lr
                    } else if ll == PartitionLabel::Normal {
                        // Tie: prefer Normal (specific-predicate bias).
                        ll
                    } else {
                        lr
                    }
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionLabel::{Abnormal as A, Empty as E, Normal as N};
    use dbsherlock_telemetry::{AttributeMeta, Schema, Value};

    fn dummy_context() -> (Dataset, PartitionSpace, Region) {
        let schema = Schema::from_attrs([AttributeMeta::numeric("x")]).unwrap();
        let mut d = Dataset::new(schema);
        for i in 0..10 {
            d.push_row(i as f64, &[Value::Num(i as f64)]).unwrap();
        }
        let space = PartitionSpace::build(&d, 0, 10).unwrap();
        let normal = Region::from_range(0..5);
        (d, space, normal)
    }

    fn run(labels: &[PartitionLabel], delta: f64) -> Vec<PartitionLabel> {
        let (d, space, normal) = dummy_context();
        // Pad/truncate label vec to the space size for the helper call.
        let mut padded = labels.to_vec();
        padded.resize(space.len(), E);
        fill_gaps(&padded, delta, &d, 0, &space, &normal)
    }

    #[test]
    fn same_label_both_sides() {
        let filled = run(&[N, E, E, N, A, A, A, A, A, A], 10.0);
        assert_eq!(&filled[..4], &[N, N, N, N]);
    }

    #[test]
    fn nearer_side_wins_with_neutral_delta() {
        // N at 0, A at 9; delta = 1: partitions 1..5 closer to N, 5..9
        // closer to A; the exact tie at index 4/5 midpoint goes to Normal.
        let filled = run(&[N, E, E, E, E, E, E, E, E, A], 1.0);
        assert_eq!(filled, vec![N, N, N, N, N, A, A, A, A, A]);
    }

    #[test]
    fn large_delta_pushes_boundary_towards_abnormal() {
        let filled = run(&[N, E, E, E, E, E, E, E, E, A], 10.0);
        // With delta = 10, only partitions essentially adjacent to A stay
        // abnormal: weighted distance to A at index j is (9-j)*10 vs j.
        let abnormal_count = filled.iter().filter(|&&l| l == A).count();
        assert_eq!(abnormal_count, 1, "{filled:?}");
    }

    #[test]
    fn small_delta_spreads_abnormal() {
        let filled = run(&[N, E, E, E, E, E, E, E, E, A], 0.1);
        let abnormal_count = filled.iter().filter(|&&l| l == A).count();
        assert!(abnormal_count >= 8, "{filled:?}");
    }

    #[test]
    fn edge_gaps_take_their_only_neighbour() {
        let filled = run(&[E, E, A, E, E, N, E, E, E, E], 1.0);
        assert_eq!(filled[0], A);
        assert_eq!(filled[1], A);
        assert_eq!(filled[9], N);
    }

    #[test]
    fn no_abnormal_partitions_is_a_noop() {
        let labels = [N, E, E, N, E, E, E, E, E, N];
        let filled = run(&labels, 10.0);
        assert_eq!(filled.to_vec(), labels.to_vec());
    }

    #[test]
    fn all_abnormal_anchors_normal_average() {
        // Normal region rows 0..5 have values 0..4, average 2 -> partition
        // 2 of the 10-wide space is forced Normal.
        let filled = run(&[E, E, E, E, E, E, E, E, E, A], 1.0);
        assert_eq!(filled[2], N);
        assert_eq!(filled[9], A);
        // Everything fills to one of the two labels.
        assert!(filled.iter().all(|&l| l != E));
    }
}
