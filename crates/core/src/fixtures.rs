//! Shared test-dataset builders.
//!
//! The per-module test helpers used to `unwrap()` every `push_row`, which
//! on a malformed fixture reported only `called unwrap on an Err value` —
//! no row, no attribute, no underlying error. These builders surface the
//! telemetry error with row context instead. Test-only; never compiled
//! into the library.

// The lib.rs `#[cfg(test)]` gate already keeps this out of shipped code;
// the inner attribute repeats it where file-scoped tooling can see it.
#![cfg(test)]

use dbsherlock_telemetry::{AttributeMeta, Dataset, Schema, Value};

/// Build a dataset over `attrs` with `n_rows` rows, one `fill(dataset, i)`
/// call per row (the dataset is handed in mutably so categorical fixtures
/// can intern labels). Schema and row errors panic with their cause and
/// position rather than a bare unwrap.
pub(crate) fn build_dataset(
    attrs: impl IntoIterator<Item = AttributeMeta>,
    n_rows: usize,
    mut fill: impl FnMut(&mut Dataset, usize) -> Vec<Value>,
) -> Dataset {
    let schema = match Schema::from_attrs(attrs) {
        Ok(schema) => schema,
        Err(e) => panic!("fixture schema rejected: {e}"),
    };
    let mut d = Dataset::new(schema);
    for i in 0..n_rows {
        let values = fill(&mut d, i);
        if let Err(e) = d.push_row(i as f64, &values) {
            panic!("fixture row {i} rejected ({values:?}): {e}");
        }
    }
    d
}

/// Single numeric attribute `x` holding `values`, one row per value.
pub(crate) fn numeric_dataset(values: &[f64]) -> Dataset {
    build_dataset([AttributeMeta::numeric("x")], values.len(), |_, i| vec![Value::Num(values[i])])
}

/// Single categorical attribute `c` holding `labels`, one row per label.
pub(crate) fn categorical_dataset(labels: &[&str]) -> Dataset {
    build_dataset([AttributeMeta::categorical("c")], labels.len(), |d, i| {
        match d.intern(0, labels[i]) {
            Ok(v) => vec![v],
            Err(e) => panic!("fixture intern of {:?} at row {i} rejected: {e}", labels[i]),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_round_trip() {
        let d = numeric_dataset(&[1.0, 2.0, 3.0]);
        assert_eq!(d.n_rows(), 3);
        assert_eq!(d.numeric(0), Some(&[1.0, 2.0, 3.0][..]));
        let c = categorical_dataset(&["a", "b", "a"]);
        assert_eq!(c.n_rows(), 3);
        let (ids, dict) = c.categorical(0).unwrap();
        assert_eq!(ids, &[0, 1, 0]);
        assert_eq!(dict.len(), 2);
    }

    #[test]
    #[should_panic(expected = "rejected")]
    fn arity_mismatch_panics_with_context() {
        build_dataset([AttributeMeta::numeric("x")], 1, |_, _| {
            vec![Value::Num(1.0), Value::Num(2.0)]
        });
    }
}
