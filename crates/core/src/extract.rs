//! Predicate extraction from a labeled partition space (paper §4.5).
//!
//! Numeric: a candidate is extracted only when (a) the filled space holds a
//! *single* block of consecutive `Abnormal` partitions and (b) the
//! normalized abnormal/normal means differ by more than `θ`. The block's
//! position determines the shape: touching the left edge gives `Attr < ub`,
//! the right edge gives `Attr > lb`, and an interior block gives
//! `lb < Attr < ub`.
//!
//! Categorical: every `Abnormal` partition contributes its category value
//! to an `Attr ∈ {...}` predicate (directly after labeling; no filtering
//! or gap-filling).

use dbsherlock_telemetry::{stats, Dataset, Dictionary, Region};

use crate::partition::{PartitionLabel, PartitionSpace};
use crate::predicate::Predicate;

/// The single maximal run of `Abnormal` partitions, if there is exactly
/// one; `None` when there are zero or several runs.
pub fn single_abnormal_block(labels: &[PartitionLabel]) -> Option<std::ops::Range<usize>> {
    let mut block: Option<std::ops::Range<usize>> = None;
    let mut j = 0;
    while j < labels.len() {
        if labels[j] == PartitionLabel::Abnormal {
            let start = j;
            while j < labels.len() && labels[j] == PartitionLabel::Abnormal {
                j += 1;
            }
            if block.is_some() {
                return None; // second block
            }
            block = Some(start..j);
        } else {
            j += 1;
        }
    }
    block
}

/// Normalized mean difference `d = |µ_A − µ_N|` of a numeric attribute
/// (paper Eq. 2 + §4.5). Returns `None` when either region contributes no
/// finite values.
pub fn normalized_mean_difference(
    dataset: &Dataset,
    attr_id: usize,
    abnormal: &Region,
    normal: &Region,
) -> Option<f64> {
    let values = dataset.numeric(attr_id)?;
    let range = dataset.numeric_range(attr_id).ok()?;
    normalized_mean_difference_view(values, range, abnormal, normal)
}

/// Columnar [`normalized_mean_difference`] kernel: a fused
/// normalize-and-sum scan per region over the attribute-contiguous slice
/// (no intermediate buffers), with `range` supplied by the caller — the
/// snapshot's memoized `(min, max)` on the hot path. Summation order is
/// the region's index order, matching the buffered form bit for bit.
pub fn normalized_mean_difference_view(
    values: &[f64],
    (min, max): (f64, f64),
    abnormal: &Region,
    normal: &Region,
) -> Option<f64> {
    let mean_of = |region: &Region| -> Option<f64> {
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for &r in region.indices() {
            let Some(&v) = values.get(r) else { continue };
            if v.is_finite() {
                sum += stats::normalize(v, min, max);
                count += 1;
            }
        }
        if count == 0 {
            None
        } else {
            Some(sum / count as f64)
        }
    };
    let a = mean_of(abnormal)?;
    let n = mean_of(normal)?;
    Some((a - n).abs())
}

/// Extract the numeric candidate predicate for the given filled labels, or
/// `None` when the single-block condition fails or the block spans the
/// whole space (no boundary to report).
pub fn extract_numeric(
    attr_name: &str,
    space: &PartitionSpace,
    filled: &[PartitionLabel],
) -> Option<Predicate> {
    let block = single_abnormal_block(filled)?;
    let r = space.len();
    let touches_left = block.start == 0;
    let touches_right = block.end == r;
    match (touches_left, touches_right) {
        (true, true) => None, // whole domain abnormal: no usable boundary
        (true, false) => Some(Predicate::lt(attr_name, space.upper_bound(block.end - 1)?)),
        (false, true) => Some(Predicate::gt(attr_name, space.lower_bound(block.start)?)),
        (false, false) => Some(Predicate::between(
            attr_name,
            space.lower_bound(block.start)?,
            space.upper_bound(block.end - 1)?,
        )),
    }
}

/// Extract the categorical candidate predicate: all `Abnormal` categories.
pub fn extract_categorical(
    attr_name: &str,
    dataset: &Dataset,
    attr_id: usize,
    labels: &[PartitionLabel],
) -> Option<Predicate> {
    let (_, dict) = dataset.categorical(attr_id).ok()?;
    extract_categorical_view(attr_name, dict, labels)
}

/// [`extract_categorical`] against an already-resolved dictionary (the
/// snapshot path).
pub fn extract_categorical_view(
    attr_name: &str,
    dict: &Dictionary,
    labels: &[PartitionLabel],
) -> Option<Predicate> {
    let abnormal_labels: Vec<String> = labels
        .iter()
        .enumerate()
        .filter(|(_, &l)| l == PartitionLabel::Abnormal)
        .filter_map(|(j, _)| dict.label(j as u32).map(str::to_string))
        .collect();
    if abnormal_labels.is_empty() {
        None
    } else {
        Some(Predicate::in_set(attr_name, abnormal_labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionLabel::{Abnormal as A, Normal as N};
    use dbsherlock_telemetry::{AttributeMeta, Schema, Value};

    fn space_0_100(r: usize) -> PartitionSpace {
        PartitionSpace::Numeric { min: 0.0, max: 100.0, r }
    }

    #[test]
    fn block_detection() {
        assert_eq!(single_abnormal_block(&[N, A, A, N]), Some(1..3));
        assert_eq!(single_abnormal_block(&[A, A, A]), Some(0..3));
        assert_eq!(single_abnormal_block(&[N, N]), None);
        assert_eq!(single_abnormal_block(&[A, N, A]), None);
        assert_eq!(single_abnormal_block(&[]), None);
    }

    #[test]
    fn right_edge_block_gives_gt() {
        let space = space_0_100(5);
        let p = extract_numeric("x", &space, &[N, N, N, A, A]).unwrap();
        assert_eq!(p, Predicate::gt("x", 60.0));
    }

    #[test]
    fn left_edge_block_gives_lt() {
        let space = space_0_100(5);
        let p = extract_numeric("x", &space, &[A, A, N, N, N]).unwrap();
        assert_eq!(p, Predicate::lt("x", 40.0));
    }

    #[test]
    fn interior_block_gives_between() {
        let space = space_0_100(5);
        let p = extract_numeric("x", &space, &[N, A, A, N, N]).unwrap();
        assert_eq!(p, Predicate::between("x", 20.0, 60.0));
    }

    #[test]
    fn whole_domain_block_yields_nothing() {
        let space = space_0_100(3);
        assert_eq!(extract_numeric("x", &space, &[A, A, A]), None);
    }

    #[test]
    fn two_blocks_yield_nothing() {
        let space = space_0_100(5);
        assert_eq!(extract_numeric("x", &space, &[A, N, N, A, A]), None);
    }

    #[test]
    fn normalized_difference_detects_shift() {
        let schema = Schema::from_attrs([AttributeMeta::numeric("x")]).unwrap();
        let mut d = Dataset::new(schema);
        for i in 0..10 {
            let v = if i < 5 { 10.0 + i as f64 } else { 90.0 + i as f64 };
            d.push_row(i as f64, &[Value::Num(v)]).unwrap();
        }
        let normal = Region::from_range(0..5);
        let abnormal = Region::from_range(5..10);
        let diff = normalized_mean_difference(&d, 0, &abnormal, &normal).unwrap();
        assert!(diff > 0.8, "diff {diff}");
        // Empty region yields None.
        assert!(normalized_mean_difference(&d, 0, &Region::new(), &normal).is_none());
    }

    #[test]
    fn categorical_extraction_collects_abnormal_values() {
        let schema = Schema::from_attrs([AttributeMeta::categorical("c")]).unwrap();
        let mut d = Dataset::new(schema);
        for l in ["a", "b", "c"] {
            let v = d.intern(0, l).unwrap();
            d.push_row(0.0, &[v]).unwrap();
        }
        let labels = [A, N, A];
        let p = extract_categorical("c", &d, 0, &labels).unwrap();
        assert_eq!(p, Predicate::in_set("c", ["a".to_string(), "c".to_string()]));
        assert_eq!(extract_categorical("c", &d, 0, &[N, N, N]), None);
    }
}
