//! Merging causal models with the same cause (paper §6.2).
//!
//! Merging (a) keeps only effect predicates on attributes **common to both
//! models**, and (b) combines each pair of same-attribute predicates:
//!
//! * numeric predicates of the same direction widen to include both
//!   boundaries (`A > 10` ⊕ `A > 15` → `A > 10`; `C > 20` ⊕ `C > 15` →
//!   `C > 15` — i.e. the union of the matched regions);
//! * numeric predicates of opposite directions (`A > 10` vs `A < 30`) are
//!   inconsistent and the attribute is discarded;
//! * a one-sided predicate absorbs a `Between` on the same side by
//!   widening to the union of the two regions;
//! * categorical predicates keep the **intersection** of their category
//!   sets (the paper's worked example merges `{xx, yy, zz}` with
//!   `{xx, zz}` into `{xx, zz}`); an empty intersection discards the
//!   attribute.

use crate::causal::CausalModel;
use crate::error::SherlockError;
use crate::predicate::{Predicate, PredicateOp};

/// Merge two same-attribute predicates, or `None` when inconsistent.
pub fn merge_predicates(a: &Predicate, b: &Predicate) -> Option<Predicate> {
    debug_assert_eq!(a.attr, b.attr);
    use PredicateOp::*;
    let op = match (&a.op, &b.op) {
        (Gt(x), Gt(y)) => Gt(x.min(*y)),
        (Lt(x), Lt(y)) => Lt(x.max(*y)),
        (Between(l1, h1), Between(l2, h2)) => Between(l1.min(*l2), h1.max(*h2)),
        // One-sided ⊕ Between: widen the one-sided bound to cover the
        // interval (union of the two matched regions).
        (Gt(x), Between(l, _)) | (Between(l, _), Gt(x)) => Gt(x.min(*l)),
        (Lt(x), Between(_, h)) | (Between(_, h), Lt(x)) => Lt(x.max(*h)),
        // Opposite directions are inconsistent (paper §6.2).
        (Gt(_), Lt(_)) | (Lt(_), Gt(_)) => return None,
        (InSet(s1), InSet(s2)) => {
            let intersection: Vec<String> = s1.iter().filter(|l| s2.contains(l)).cloned().collect();
            if intersection.is_empty() {
                return None;
            }
            InSet(intersection)
        }
        // Kind mismatch on the same attribute name (shouldn't happen with
        // a consistent schema): inconsistent.
        _ => return None,
    };
    Some(Predicate { attr: a.attr.clone(), op })
}

/// Merge two models sharing a cause.
pub fn merge_models(m1: &CausalModel, m2: &CausalModel) -> CausalModel {
    debug_assert_eq!(m1.cause, m2.cause);
    let mut predicates = Vec::new();
    for p1 in &m1.predicates {
        let Some(p2) = m2.predicates.iter().find(|p| p.attr == p1.attr) else {
            continue;
        };
        if let Some(merged) = merge_predicates(p1, p2) {
            predicates.push(merged);
        }
    }
    CausalModel {
        cause: m1.cause.clone(),
        predicates,
        merged_from: m1.merged_from + m2.merged_from,
    }
}

/// Fold a sequence of same-cause models into one. Errors on an empty
/// sequence — there is no identity model to fall back to.
pub fn merge_all<'a>(
    models: impl IntoIterator<Item = &'a CausalModel>,
) -> Result<CausalModel, SherlockError> {
    let mut iter = models.into_iter();
    let first = iter.next().ok_or(SherlockError::EmptyInput("models to merge"))?.clone();
    Ok(iter.fold(first, |acc, m| merge_models(&acc, m)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // M1: {A > 10, B > 100, C > 20, E ∈ {xx, yy, zz}}
        // M2: {A > 15, C > 15, D < 250, E ∈ {xx, zz}}
        let m1 = CausalModel {
            cause: "c".into(),
            predicates: vec![
                Predicate::gt("A", 10.0),
                Predicate::gt("B", 100.0),
                Predicate::gt("C", 20.0),
                Predicate::in_set("E", ["xx".into(), "yy".into(), "zz".into()]),
            ],
            merged_from: 1,
        };
        let m2 = CausalModel {
            cause: "c".into(),
            predicates: vec![
                Predicate::gt("A", 15.0),
                Predicate::gt("C", 15.0),
                Predicate::lt("D", 250.0),
                Predicate::in_set("E", ["xx".into(), "zz".into()]),
            ],
            merged_from: 1,
        };
        let merged = merge_models(&m1, &m2);
        assert_eq!(
            merged.predicates,
            vec![
                Predicate::gt("A", 10.0),
                Predicate::gt("C", 15.0),
                Predicate::in_set("E", ["xx".into(), "zz".into()]),
            ]
        );
        assert_eq!(merged.merged_from, 2);
    }

    #[test]
    fn opposite_directions_discard_attribute() {
        assert_eq!(merge_predicates(&Predicate::gt("A", 10.0), &Predicate::lt("A", 30.0)), None);
        assert_eq!(merge_predicates(&Predicate::lt("A", 30.0), &Predicate::gt("A", 10.0)), None);
    }

    #[test]
    fn lt_predicates_take_wider_bound() {
        let merged =
            merge_predicates(&Predicate::lt("A", 10.0), &Predicate::lt("A", 30.0)).unwrap();
        assert_eq!(merged, Predicate::lt("A", 30.0));
    }

    #[test]
    fn between_union() {
        let merged = merge_predicates(
            &Predicate::between("A", 10.0, 20.0),
            &Predicate::between("A", 15.0, 40.0),
        )
        .unwrap();
        assert_eq!(merged, Predicate::between("A", 10.0, 40.0));
    }

    #[test]
    fn one_sided_absorbs_between() {
        let merged =
            merge_predicates(&Predicate::gt("A", 50.0), &Predicate::between("A", 30.0, 60.0))
                .unwrap();
        assert_eq!(merged, Predicate::gt("A", 30.0));
        let merged =
            merge_predicates(&Predicate::between("A", 30.0, 60.0), &Predicate::lt("A", 40.0))
                .unwrap();
        assert_eq!(merged, Predicate::lt("A", 60.0));
    }

    #[test]
    fn disjoint_category_sets_discard() {
        let a = Predicate::in_set("E", ["x".to_string()]);
        let b = Predicate::in_set("E", ["y".to_string()]);
        assert_eq!(merge_predicates(&a, &b), None);
    }

    #[test]
    fn merge_all_folds() {
        let make = |threshold: f64| CausalModel {
            cause: "c".into(),
            predicates: vec![Predicate::gt("A", threshold)],
            merged_from: 1,
        };
        let models = [make(10.0), make(5.0), make(20.0)];
        let merged = merge_all(models.iter()).unwrap();
        assert_eq!(merged.predicates, vec![Predicate::gt("A", 5.0)]);
        assert_eq!(merged.merged_from, 3);
        assert!(matches!(
            merge_all(std::iter::empty()),
            Err(SherlockError::EmptyInput("models to merge"))
        ));
    }

    #[test]
    fn uncommon_attributes_drop_even_when_consistent() {
        let m1 = CausalModel {
            cause: "c".into(),
            predicates: vec![Predicate::gt("A", 1.0), Predicate::gt("OnlyInM1", 5.0)],
            merged_from: 1,
        };
        let m2 = CausalModel {
            cause: "c".into(),
            predicates: vec![Predicate::gt("A", 2.0)],
            merged_from: 1,
        };
        let merged = merge_models(&m1, &m2);
        assert_eq!(merged.predicates, vec![Predicate::gt("A", 1.0)]);
    }
}
