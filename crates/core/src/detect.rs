//! Automatic anomaly detection (paper §7).
//!
//! 1. Min–max-normalize every numeric attribute (Eq. 2).
//! 2. Compute each attribute's **potential power** (Eq. 4): the maximum
//!    absolute difference between the attribute's overall median and the
//!    median within any sliding window of size `τ` — a median filter that
//!    responds to abrupt, sustained level shifts while ignoring isolated
//!    spikes. Keep attributes with `PP > PP_t`.
//! 3. Cluster the rows (as points over the selected attributes) with
//!    DBSCAN, `minPts = 3` and `ε = max(L_3)/4` from the k-dist list.
//!    One refinement over the paper's rule: `ε` is floored at twice the
//!    99th percentile of `L_3`, so it never drops below the data's own
//!    local density (with step-shaped anomalies there are no transition
//!    points between the normal and abnormal blobs, `max(L_3)` collapses
//!    to the intra-blob spacing, and the bare `/4` rule would shatter both
//!    blobs into noise).
//! 4. Report the rows of every cluster smaller than 20% of all rows —
//!    anomalies are assumed to be a small minority (§7). Points DBSCAN
//!    labels as noise are not reported, per the paper.

use dbsherlock_cluster::{dbscan, kdist_of, rows_from_columns, Label};
use dbsherlock_telemetry::{stats, AttributeKind, Dataset, Region};

use crate::budget::ArmedBudget;
use crate::error::SherlockError;
use crate::exec::try_par_map_indexed;
use crate::params::SherlockParams;

/// Potential power of a normalized series (Eq. 4): the largest absolute
/// deviation of any `tau`-window median from the global median.
pub fn potential_power(normalized: &[f64], tau: usize) -> f64 {
    if normalized.is_empty() || tau == 0 || tau > normalized.len() {
        return 0.0;
    }
    let global = stats::median(normalized);
    let mut scratch = vec![0.0; tau];
    let mut best: f64 = 0.0;
    for window in normalized.windows(tau) {
        scratch.copy_from_slice(window);
        let m = stats::median_in_place(&mut scratch);
        best = best.max((m - global).abs());
    }
    best
}

/// Attribute ids whose potential power exceeds `PP_t`, with their
/// normalized columns. The per-attribute median filter is the detector's
/// first O(rows × attrs) stage, so it fans out across the thread budget;
/// collection by index keeps schema order. Budget-checked per attribute;
/// panics are caught at the attribute slot.
fn select_attributes(
    dataset: &Dataset,
    params: &SherlockParams,
    budget: &ArmedBudget,
) -> Result<Vec<(usize, Vec<f64>)>, SherlockError> {
    let numeric = dataset.schema().ids_of_kind(AttributeKind::Numeric);
    let slots = try_par_map_indexed(params.exec, "detect", &numeric, |_, &attr_id| {
        budget.check("detect")?;
        let Some(values) = dataset.numeric(attr_id) else { return Ok(None) };
        let normalized = stats::normalize_slice(values);
        let pp = potential_power(&normalized, params.tau);
        Ok((pp > params.pp_t).then_some((attr_id, normalized)))
    });
    let mut selected = Vec::new();
    for slot in slots {
        if let Some(entry) = slot? {
            selected.push(entry);
        }
    }
    Ok(selected)
}

/// Result of automatic detection.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Proposed abnormal rows.
    pub region: Region,
    /// Attributes (by id) that passed the potential-power filter.
    pub selected_attrs: Vec<usize>,
}

/// Run automatic anomaly detection over `dataset`. Returns `None` when no
/// attribute shows enough potential power or when clustering finds nothing
/// small enough to call anomalous.
///
/// Runs with an unlimited budget, and degrades an internal failure (a
/// caught panic) to `None` — detection is advisory, so "nothing detected"
/// is its graceful floor. Callers that need the distinction, or a real
/// budget, use [`try_detect_anomaly`].
pub fn detect_anomaly(dataset: &Dataset, params: &SherlockParams) -> Option<Detection> {
    try_detect_anomaly(dataset, params, &ArmedBudget::unlimited()).unwrap_or(None)
}

/// [`detect_anomaly`] under a [`DiagnosisBudget`](crate::DiagnosisBudget):
/// cooperative deadline/cancellation checks before each attribute's median
/// filter and each point's k-dist scan, size admission up front, and
/// per-slot panic isolation. Within budget, output is identical to
/// [`detect_anomaly`].
pub fn try_detect_anomaly(
    dataset: &Dataset,
    params: &SherlockParams,
    budget: &ArmedBudget,
) -> Result<Option<Detection>, SherlockError> {
    budget.admit(dataset.n_rows(), params.n_partitions)?;
    let selected = select_attributes(dataset, params, budget)?;
    if selected.is_empty() {
        return Ok(None);
    }
    let columns: Vec<&[f64]> = selected.iter().map(|(_, col)| col.as_slice()).collect();
    let points = rows_from_columns(&columns);
    if points.len() < params.min_pts {
        return Ok(None);
    }
    // O(n²) pairwise scan, one independent row per point: the detector's
    // dominant cost, mapped across the thread budget.
    let indices: Vec<usize> = (0..points.len()).collect();
    let lk_slots = try_par_map_indexed(params.exec, "detect", &indices, |_, &i| {
        budget.check("detect")?;
        Ok(kdist_of(&points, i, params.min_pts))
    });
    let mut lk: Vec<f64> = Vec::with_capacity(lk_slots.len());
    for slot in lk_slots {
        lk.push(slot?);
    }
    let max_lk = lk.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max_lk <= 0.0 || !max_lk.is_finite() {
        return Ok(None);
    }
    // The paper's rule with a local-density floor (see module docs): ε
    // never drops below twice the 99th percentile of L_k, so clusters stay
    // internally connected even when there are no transition points to
    // prop up max(L_k).
    let eps = (max_lk / 4.0).max(2.0 * stats::quantile(&lk, 0.99));
    let clustering = dbscan(&points, eps, params.min_pts);
    let n = points.len();
    let max_cluster = (params.max_anomaly_fraction * n as f64) as usize;
    let sizes = clustering.sizes();
    let mut rows: Vec<usize> = Vec::new();
    for (row, label) in clustering.labels.iter().enumerate() {
        let anomalous = match label {
            Label::Noise => false,
            Label::Cluster(id) => sizes[*id] < max_cluster,
        };
        if anomalous {
            rows.push(row);
        }
    }
    if rows.is_empty() || rows.len() >= n {
        return Ok(None);
    }
    Ok(Some(Detection {
        region: Region::from_indices(rows),
        selected_attrs: selected.into_iter().map(|(id, _)| id).collect(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsherlock_telemetry::{AttributeMeta, Schema, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn potential_power_of_level_shift() {
        // 100 points at 0, then 30 at 1: window of 20 inside the shifted
        // block has median 1; global median 0.
        let mut series = vec![0.0; 100];
        series.extend(vec![1.0; 30]);
        assert!((potential_power(&series, 20) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn potential_power_ignores_isolated_spike() {
        // A single-sample spike cannot dominate a 20-sample median.
        let mut series = vec![0.0; 100];
        series[50] = 1.0;
        assert_eq!(potential_power(&series, 20), 0.0);
    }

    #[test]
    fn potential_power_degenerate_inputs() {
        assert_eq!(potential_power(&[], 20), 0.0);
        assert_eq!(potential_power(&[1.0, 2.0], 20), 0.0);
        assert_eq!(potential_power(&[1.0, 2.0, 3.0], 0), 0.0);
    }

    /// 300 rows of noisy baseline with a 40-row level shift in two
    /// attributes; one pure-noise attribute.
    fn dataset_with_shift() -> (Dataset, Region) {
        let schema = Schema::from_attrs([
            AttributeMeta::numeric("a"),
            AttributeMeta::numeric("b"),
            AttributeMeta::numeric("noise"),
        ])
        .unwrap();
        let mut d = Dataset::new(schema);
        let mut rng = StdRng::seed_from_u64(77);
        for i in 0..300 {
            let shifted = (200..240).contains(&i);
            let a = if shifted { 95.0 } else { 10.0 } + rng.random::<f64>() * 4.0;
            let b = if shifted { 3.0 } else { 70.0 } + rng.random::<f64>() * 4.0;
            // Bell-ish noise: min–max normalization stretches any series
            // to [0, 1], so a realistic noise attribute concentrates its
            // mass near the middle instead of being uniform over the range.
            let noise =
                (rng.random::<f64>() + rng.random::<f64>() + rng.random::<f64>()) / 3.0 * 100.0;
            d.push_row(i as f64, &[Value::Num(a), Value::Num(b), Value::Num(noise)]).unwrap();
        }
        (d, Region::from_range(200..240))
    }

    #[test]
    fn detects_the_shifted_block() {
        let (d, truth) = dataset_with_shift();
        let detection = detect_anomaly(&d, &SherlockParams::default()).unwrap();
        let iou = detection.region.iou(&truth);
        assert!(iou > 0.8, "IoU {iou}, detected {:?}", detection.region.intervals());
        // The pure-noise attribute must not be selected.
        let noise_id = d.schema().id_of("noise").unwrap();
        assert!(!detection.selected_attrs.contains(&noise_id));
        assert_eq!(detection.selected_attrs.len(), 2);
    }

    #[test]
    fn budgeted_detect_matches_unbudgeted_and_enforces_limits() {
        let (d, _) = dataset_with_shift();
        let params = SherlockParams::default();
        let plain = detect_anomaly(&d, &params);
        let budgeted =
            try_detect_anomaly(&d, &params, &crate::budget::ArmedBudget::unlimited()).unwrap();
        assert_eq!(plain, budgeted);
        assert!(plain.is_some());

        let tight = crate::budget::DiagnosisBudget::unlimited().with_max_rows(10).arm();
        assert!(matches!(
            try_detect_anomaly(&d, &params, &tight),
            Err(SherlockError::BudgetExceeded { what: "rows", .. })
        ));
        let expired = crate::budget::DiagnosisBudget::unlimited().with_deadline_ms(0).arm();
        assert!(matches!(
            try_detect_anomaly(&d, &params, &expired),
            Err(SherlockError::DeadlineExceeded { stage: "detect", .. })
        ));
    }

    #[test]
    fn no_detection_on_steady_data() {
        let schema = Schema::from_attrs([AttributeMeta::numeric("x")]).unwrap();
        let mut d = Dataset::new(schema);
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..200 {
            d.push_row(i as f64, &[Value::Num(50.0 + rng.random::<f64>())]).unwrap();
        }
        assert!(detect_anomaly(&d, &SherlockParams::default()).is_none());
    }

    #[test]
    fn no_detection_when_anomaly_is_majority() {
        // A 50/50 split: neither cluster is under 20%, no noise points.
        let schema = Schema::from_attrs([AttributeMeta::numeric("x")]).unwrap();
        let mut d = Dataset::new(schema);
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..200 {
            let base = if i < 100 { 10.0 } else { 90.0 };
            d.push_row(i as f64, &[Value::Num(base + rng.random::<f64>())]).unwrap();
        }
        let detection = detect_anomaly(&d, &SherlockParams::default());
        if let Some(det) = detection {
            // Only stray noise points may be reported, never a whole half.
            assert!(det.region.len() < 20, "{:?}", det.region.intervals());
        }
    }
}
