//! Interventional validation of ranked explanations (chaos-driven causal
//! checking, after PerfCE).
//!
//! DBSherlock's causal models are **correlational**: a model's confidence
//! (Eq. 3) says its predicates separate the user's abnormal region from the
//! normal one, not that the named cause *produces* that symptom. This
//! module closes the loop: for each top-ranked candidate cause it asks a
//! simulator-backed [`InterventionRunner`] to **re-inject that fault** and
//! checks whether the *observed* symptom signature reproduces under the
//! intervention.
//!
//! The symptom signature is the explanation's own generated predicates,
//! frozen into a throwaway [`CausalModel`]. Each trial re-runs one candidate
//! fault from a recorded seed and scores that model on the re-run's
//! abnormal/normal split; a no-fault **control** run is scored the same way,
//! and a candidate's confidence is the mean fault-minus-control margin. Only
//! the true cause recreates the observed signature — a wrong candidate's
//! fault moves *different* attributes, so the symptom model's separation
//! collapses to the control level and the candidate is not `reproduced`.
//!
//! Robustness contract (the reason this lives behind the §9 machinery):
//!
//! * every trial runs in its own [`try_par_map_indexed`] slot — a panicking
//!   runner or scorer poisons one trial, never the validation pass;
//! * transient runner failures are retried a **bounded** number of times
//!   ([`InterventionConfig::max_attempts`]), polling the armed
//!   [`DiagnosisBudget`] before every attempt so a blown deadline or raised
//!   [`CancelFlag`](crate::CancelFlag) stops the pass cooperatively;
//! * verdicts are **always populated** for every selected candidate —
//!   failed or out-of-budget trials yield `reproduced: false`, never a
//!   missing entry.

use dbsherlock_telemetry::{Dataset, Region};

use crate::budget::DiagnosisBudget;
use crate::causal::CausalModel;
use crate::diagnose::Explanation;
use crate::error::SherlockError;
use crate::exec::{try_par_map_indexed, ExecPolicy};
use crate::params::SherlockParams;

/// Cause label of the throwaway symptom-signature model. Never stored in a
/// repository; spelled so no real cause collides with it.
pub const SYMPTOM_MODEL_CAUSE: &str = "__intervention::observed_symptom__";

/// The outcome of interventionally validating one candidate cause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterventionVerdict {
    /// The injected fault recreated the observed symptom signature.
    pub reproduced: bool,
    /// Trials attempted for this candidate (failed ones included).
    pub trials: u32,
    /// Mean fault-minus-control margin of the symptom model's separation
    /// score, clamped to `[-1, 1]`. Values near `+1` mean the re-injected
    /// fault reproduces the symptom as cleanly as the original incident;
    /// values near `0` mean the fault is indistinguishable from the
    /// no-fault control.
    pub confidence: f64,
}

/// A candidate cause with its verdict and the seed its trials derive from
/// (trial `t` runs on [`trial_seed`]`(seed, t)` — re-running from the
/// recorded seed reproduces every trial bit-for-bit).
#[derive(Debug, Clone, PartialEq)]
pub struct CauseVerdict {
    /// The candidate cause, as ranked in the explanation.
    pub cause: String,
    /// What the intervention concluded.
    pub verdict: InterventionVerdict,
    /// Base seed of this candidate's trial sequence.
    pub seed: u64,
}

/// One scenario re-run under an injected (or absent) fault: the merged
/// telemetry plus the ground-truth abnormal/normal split of the re-run.
#[derive(Debug, Clone)]
pub struct TrialRun {
    /// The re-run's telemetry.
    pub data: Dataset,
    /// Where the injected fault was active (for a control run: where it
    /// *would* have been).
    pub abnormal: Region,
    /// The re-run's normal region.
    pub normal: Region,
}

/// Re-runs scenarios with injected faults on behalf of the intervention
/// engine. Implemented by the simulator crate ([`Sync`] because trials fan
/// out across the exec layer's threads).
pub trait InterventionRunner: Sync {
    /// Can this runner inject the fault `cause` names? Candidates it cannot
    /// inject are skipped (no verdict — nothing was tested).
    fn can_inject(&self, cause: &str) -> bool;

    /// Re-run the scenario with the fault `cause` names injected, seeded by
    /// `seed`. Must be deterministic in `seed`.
    fn inject(&self, cause: &str, seed: u64) -> Result<TrialRun, SherlockError>;

    /// A no-fault control run, seeded by `seed`, with the same regions a
    /// fault run would have. Must be deterministic in `seed`.
    fn control(&self, seed: u64) -> Result<TrialRun, SherlockError>;
}

/// Knobs of one validation pass.
#[derive(Debug, Clone)]
pub struct InterventionConfig {
    /// Trials per candidate (and control runs for the pass).
    pub trials: u32,
    /// Bounded retry budget per trial: a trial gives up after this many
    /// runner failures (each retry re-derives its seed, so a deterministic
    /// failure is not retried into the ground).
    pub max_attempts: u32,
    /// How many of the top-ranked injectable candidates to validate.
    pub top_k: usize,
    /// A candidate is `reproduced` when its mean fault-minus-control margin
    /// reaches this threshold.
    pub reproduce_margin: f64,
    /// Reorder the explanation's cause lists so reproduced candidates rank
    /// first (see [`validate_explanation`] for the exact rule).
    pub promote: bool,
    /// Base seed of the pass; all trial seeds derive from it.
    pub base_seed: u64,
    /// Thread budget for the trial fan-out (order-independent: verdicts are
    /// bit-identical under any policy).
    pub exec: ExecPolicy,
    /// Budget for the whole pass; checked before every trial attempt.
    pub budget: DiagnosisBudget,
}

impl Default for InterventionConfig {
    fn default() -> Self {
        InterventionConfig {
            trials: 3,
            max_attempts: 3,
            top_k: 3,
            reproduce_margin: 0.25,
            promote: true,
            base_seed: 0x1B7E_57A9,
            exec: ExecPolicy::Auto,
            budget: DiagnosisBudget::unlimited(),
        }
    }
}

/// Bookkeeping of one validation pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterventionReport {
    /// Candidates selected for validation (verdicts attached).
    pub candidates: usize,
    /// Total trial slots run (controls included).
    pub trials_run: u32,
    /// Trials that exhausted their attempts (or hit the budget) and were
    /// scored as not-reproducing.
    pub trial_failures: u32,
    /// Trials whose slot caught a panic (runner or scorer) — isolated, not
    /// escaped.
    pub panics_isolated: u32,
    /// Successful-after-retry attempts beyond the first, summed.
    pub retries: u32,
}

/// splitmix64 finalizer (the crate's standard seed-mixing primitive).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over a cause name: a stable, platform-independent hash (std's
/// `DefaultHasher` is seeded per-process, which would break seed recording).
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The seed of trial `t` in a candidate's sequence (attempt 0; retries
/// derive further with [`attempt_seed`]).
pub fn trial_seed(candidate_seed: u64, trial: u32) -> u64 {
    mix64(candidate_seed.wrapping_add(trial as u64 + 1))
}

/// The seed of retry `attempt` (0-based) of a trial: attempt 0 uses the
/// trial seed itself, so a clean pass is reproducible from the recorded
/// seed; later attempts re-derive so a seed-deterministic failure is not
/// repeated verbatim.
pub fn attempt_seed(trial_seed: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        trial_seed
    } else {
        mix64(trial_seed ^ ((attempt as u64) << 32))
    }
}

/// One slot of the trial fan-out.
struct TrialSpec {
    /// `None` = control run.
    cause: Option<String>,
    /// Trial seed (attempt 0).
    seed: u64,
}

/// Interventionally validate `explanation` against `runner`.
///
/// Selects the `top_k` highest-ranked causes the runner can inject, runs
/// `trials` fault re-runs per candidate plus `trials` no-fault controls (all
/// trial slots fan out together over `cfg.exec` with per-slot panic
/// isolation), scores each re-run with the explanation's own predicate
/// signature, and attaches one [`CauseVerdict`] per candidate to
/// `explanation.interventions`.
///
/// With `cfg.promote`, reproduced candidates are then promoted in the
/// explanation's ranking: `all_causes` is stably reordered so reproduced
/// causes come first (confidence order preserved within each group), and
/// `causes` is rebuilt as the reproduced causes followed by the previously
/// λ-cleared, non-reproduced ones — an interventionally validated cause
/// outranks the λ gate, because reproduction under injection is stronger
/// evidence than correlational confidence.
///
/// Never fails on trial-level trouble: runner errors, blown budgets, and
/// panics degrade to not-reproduced verdicts (the report counts them).
pub fn validate_explanation(
    explanation: &mut Explanation,
    runner: &dyn InterventionRunner,
    params: &SherlockParams,
    cfg: &InterventionConfig,
) -> InterventionReport {
    explanation.interventions.clear();
    let mut report = InterventionReport::default();
    if explanation.predicates.is_empty() || cfg.trials == 0 {
        // No symptom signature to reproduce (or nothing to run).
        return report;
    }
    let symptom = CausalModel::from_feedback(SYMPTOM_MODEL_CAUSE, &explanation.predicates);

    let candidates: Vec<(String, u64)> = explanation
        .all_causes
        .iter()
        .filter(|c| runner.can_inject(&c.cause) || is_chaos_cause(&c.cause))
        .take(cfg.top_k)
        .map(|c| (c.cause.clone(), mix64(cfg.base_seed ^ fnv64(&c.cause))))
        .collect();
    report.candidates = candidates.len();
    if candidates.is_empty() {
        return report;
    }

    // Controls first, then each candidate's trials, flattened into one
    // fan-out so every slot gets its own panic-isolation boundary.
    let control_seed = mix64(cfg.base_seed ^ 0x0C04_7801);
    let mut specs: Vec<TrialSpec> = (0..cfg.trials)
        .map(|t| TrialSpec { cause: None, seed: trial_seed(control_seed, t) })
        .collect();
    for (cause, cand_seed) in &candidates {
        for t in 0..cfg.trials {
            specs.push(TrialSpec { cause: Some(cause.clone()), seed: trial_seed(*cand_seed, t) });
        }
    }

    let armed = cfg.budget.arm();
    // Each slot: bounded retries around the runner, then one score of the
    // symptom model on the re-run. Returns (separation score, retries used).
    let results = try_par_map_indexed(cfg.exec, "intervene", &specs, |_, spec| {
        #[cfg(any(test, feature = "chaos"))]
        if spec.cause.as_deref() == Some(crate::chaos::PANIC_INTERVENTION) {
            // sherlock-lint: allow(panic-path): deliberate chaos tripwire (see chaos module docs)
            panic!("chaos: deliberate panic injecting {:?}", crate::chaos::PANIC_INTERVENTION);
        }
        let mut last_err = SherlockError::EmptyInput("intervention trial");
        for attempt in 0..cfg.max_attempts.max(1) {
            armed.check("intervene")?;
            let seed = attempt_seed(spec.seed, attempt);
            let run = match &spec.cause {
                Some(cause) => runner.inject(cause, seed),
                None => runner.control(seed),
            };
            match run {
                Ok(run) => {
                    let n = run.data.n_rows();
                    if n == 0 {
                        return Err(SherlockError::EmptyInput("intervention trial dataset"));
                    }
                    let abnormal = run.abnormal.clip(n);
                    let normal = run.normal.clip(n);
                    if abnormal.is_empty() {
                        return Err(SherlockError::EmptyRegion { what: "abnormal", n_rows: n });
                    }
                    if normal.is_empty() {
                        return Err(SherlockError::EmptyRegion { what: "normal", n_rows: n });
                    }
                    let score = symptom.confidence(&run.data, &abnormal, &normal, params);
                    return Ok((score, attempt));
                }
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    });

    report.trials_run = results.len() as u32;
    for r in &results {
        match r {
            Ok((_, retries)) => report.retries += *retries,
            Err(SherlockError::TaskPanicked { .. }) => {
                report.panics_isolated += 1;
                report.trial_failures += 1;
            }
            Err(_) => report.trial_failures += 1,
        }
    }

    // Control baseline: the symptom model's score on no-fault re-runs.
    let control_scores: Vec<f64> = results
        .iter()
        .take(cfg.trials as usize)
        .filter_map(|r| r.as_ref().ok())
        .map(|&(s, _)| s)
        .collect();
    let control_mean = if control_scores.is_empty() {
        0.0
    } else {
        control_scores.iter().sum::<f64>() / control_scores.len() as f64
    };

    for (ci, (cause, cand_seed)) in candidates.iter().enumerate() {
        let lo = (1 + ci) * cfg.trials as usize;
        let scores: Vec<f64> = results
            .iter()
            .skip(lo)
            .take(cfg.trials as usize)
            .filter_map(|r| r.as_ref().ok())
            .map(|&(s, _)| s)
            .collect();
        let (reproduced, confidence) = if scores.is_empty() {
            (false, 0.0)
        } else {
            let margin = scores.iter().sum::<f64>() / scores.len() as f64 - control_mean;
            let confidence = margin.clamp(-1.0, 1.0);
            (confidence >= cfg.reproduce_margin, confidence)
        };
        explanation.interventions.push(CauseVerdict {
            cause: cause.clone(),
            verdict: InterventionVerdict { reproduced, trials: cfg.trials, confidence },
            seed: *cand_seed,
        });
    }

    if cfg.promote {
        promote(explanation);
    }
    report
}

/// True for the chaos tripwire cause in chaos-enabled builds (lets the
/// bench plant a deliberately panicking candidate without teaching real
/// runners about it); always false in production builds.
fn is_chaos_cause(cause: &str) -> bool {
    #[cfg(any(test, feature = "chaos"))]
    {
        cause == crate::chaos::PANIC_INTERVENTION
    }
    #[cfg(not(any(test, feature = "chaos")))]
    {
        let _ = cause;
        false
    }
}

/// Stable promotion: reproduced causes first in `all_causes`; `causes`
/// rebuilt as reproduced causes (in promoted order) plus the previously
/// λ-cleared non-reproduced ones (original order).
fn promote(explanation: &mut Explanation) {
    let reproduced: Vec<String> = explanation
        .interventions
        .iter()
        .filter(|v| v.verdict.reproduced)
        .map(|v| v.cause.clone())
        .collect();
    let mut promoted = Vec::with_capacity(explanation.all_causes.len());
    let mut rest = Vec::new();
    for c in explanation.all_causes.drain(..) {
        if reproduced.contains(&c.cause) {
            promoted.push(c);
        } else {
            rest.push(c);
        }
    }
    let mut causes = promoted.clone();
    causes.extend(explanation.causes.drain(..).filter(|c| !reproduced.contains(&c.cause)));
    promoted.extend(rest);
    explanation.all_causes = promoted;
    explanation.causes = causes;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    use dbsherlock_telemetry::{AttributeMeta, Schema, Value};

    use crate::causal::CausalModel;
    use crate::diagnose::Sherlock;
    use crate::predicate::Predicate;

    /// A dataset whose `signal` attribute jumps in rows 30..45 iff `jump`;
    /// deterministic in `seed`.
    fn trial_dataset(jump: bool, seed: u64) -> TrialRun {
        let schema = Schema::from_attrs([
            AttributeMeta::numeric("signal"),
            AttributeMeta::numeric("steady"),
        ])
        .unwrap();
        let mut d = Dataset::new(schema);
        for i in 0..80u64 {
            let abnormal = (30..45).contains(&i);
            let wobble = (mix64(seed ^ i) % 97) as f64 / 97.0;
            let base = if abnormal && jump { 80.0 + wobble * 4.0 } else { 5.0 + wobble * 5.0 };
            d.push_row(i as f64, &[Value::Num(base), Value::Num(40.0 + wobble)]).unwrap();
        }
        TrialRun {
            data: d,
            abnormal: Region::from_range(30..45),
            normal: Region::from_range(30..45).complement(80),
        }
    }

    /// Runner that reproduces the symptom only for the causes in
    /// `reproducing`; optionally fails the first `flaky_failures` calls of
    /// every (cause, trial).
    struct MockRunner {
        injectable: Vec<&'static str>,
        reproducing: Vec<&'static str>,
        flaky_failures: u32,
        calls: Mutex<HashMap<u64, u32>>,
    }

    impl MockRunner {
        fn new(injectable: &[&'static str], reproducing: &[&'static str]) -> Self {
            MockRunner {
                injectable: injectable.to_vec(),
                reproducing: reproducing.to_vec(),
                flaky_failures: 0,
                calls: Mutex::new(HashMap::new()),
            }
        }

        fn flaky(mut self, failures: u32) -> Self {
            self.flaky_failures = failures;
            self
        }

        fn maybe_fail(&self, key: u64) -> Result<(), SherlockError> {
            let mut calls = self.calls.lock().unwrap();
            let seen = calls.entry(key).or_insert(0);
            *seen += 1;
            if *seen <= self.flaky_failures {
                return Err(SherlockError::EmptyInput("transient runner failure"));
            }
            Ok(())
        }
    }

    impl InterventionRunner for MockRunner {
        fn can_inject(&self, cause: &str) -> bool {
            self.injectable.contains(&cause)
        }

        fn inject(&self, cause: &str, seed: u64) -> Result<TrialRun, SherlockError> {
            self.maybe_fail(fnv64(cause))?;
            Ok(trial_dataset(self.reproducing.contains(&cause), seed))
        }

        fn control(&self, seed: u64) -> Result<TrialRun, SherlockError> {
            Ok(trial_dataset(false, seed))
        }
    }

    /// An explanation of the `jump` symptom with two stored candidates:
    /// `alpha` ranked first, `zeta` second (both fit correlationally).
    fn explained() -> (Sherlock, Explanation) {
        let incident = trial_dataset(true, 0xA0);
        let mut sherlock = Sherlock::new(SherlockParams::default());
        let first = sherlock.explain(&incident.data, &incident.abnormal, None);
        assert!(!first.predicates.is_empty());
        sherlock.feedback("alpha", &first.predicates);
        sherlock.repository_mut().add(CausalModel {
            cause: "zeta".into(),
            predicates: vec![Predicate::gt("signal", 40.0)],
            merged_from: 1,
        });
        let explanation = sherlock.explain(&incident.data, &incident.abnormal, None);
        assert_eq!(explanation.all_causes.len(), 2);
        assert_eq!(explanation.all_causes[0].cause, "alpha");
        (sherlock, explanation)
    }

    #[test]
    fn true_cause_reproduces_and_wrong_one_does_not() {
        let (sherlock, mut explanation) = explained();
        // Interventionally, only `zeta`'s fault recreates the jump.
        let runner = MockRunner::new(&["alpha", "zeta"], &["zeta"]);
        let cfg = InterventionConfig::default();
        let report = validate_explanation(&mut explanation, &runner, sherlock.params(), &cfg);
        assert_eq!(report.candidates, 2);
        assert_eq!(report.trials_run, 3 * cfg.trials);
        assert_eq!(report.trial_failures, 0);
        assert_eq!(report.panics_isolated, 0);

        assert_eq!(explanation.interventions.len(), 2);
        let alpha = explanation.interventions.iter().find(|v| v.cause == "alpha").unwrap();
        let zeta = explanation.interventions.iter().find(|v| v.cause == "zeta").unwrap();
        assert!(zeta.verdict.reproduced, "true cause must reproduce: {zeta:?}");
        assert!(!alpha.verdict.reproduced, "wrong cause must not: {alpha:?}");
        assert!(zeta.verdict.confidence > alpha.verdict.confidence);
        assert_eq!(zeta.verdict.trials, cfg.trials);

        // Promotion: the validated cause overtakes the correlational top-1.
        assert_eq!(explanation.all_causes[0].cause, "zeta");
        assert_eq!(explanation.causes[0].cause, "zeta");
    }

    #[test]
    fn verdicts_are_deterministic_and_reproducible_from_recorded_seeds() {
        let (sherlock, mut a) = explained();
        let mut b = a.clone();
        let runner = MockRunner::new(&["alpha", "zeta"], &["zeta"]);
        let cfg = InterventionConfig { exec: ExecPolicy::Serial, ..Default::default() };
        let threaded = InterventionConfig { exec: ExecPolicy::Threads(4), ..cfg.clone() };
        validate_explanation(&mut a, &runner, sherlock.params(), &cfg);
        validate_explanation(&mut b, &runner, sherlock.params(), &threaded);
        assert_eq!(a.interventions, b.interventions, "exec policy must not change verdicts");

        // Re-running one recorded trial reproduces the same telemetry.
        let zeta = a.interventions.iter().find(|v| v.cause == "zeta").unwrap();
        let s0 = trial_seed(zeta.seed, 0);
        let once = runner.inject("zeta", attempt_seed(s0, 0)).unwrap();
        let again = runner.inject("zeta", attempt_seed(s0, 0)).unwrap();
        assert_eq!(once.data.numeric(0).unwrap(), again.data.numeric(0).unwrap());
    }

    #[test]
    fn transient_failures_are_retried_within_the_bound() {
        let (sherlock, mut explanation) = explained();
        // Two failures per cause, three attempts allowed: recovery.
        let runner = MockRunner::new(&["alpha", "zeta"], &["zeta"]).flaky(2);
        let cfg = InterventionConfig { trials: 1, ..Default::default() };
        let report = validate_explanation(&mut explanation, &runner, sherlock.params(), &cfg);
        assert_eq!(report.trial_failures, 0, "{report:?}");
        assert!(report.retries >= 2, "{report:?}");
        assert!(explanation.interventions.iter().any(|v| v.verdict.reproduced));
    }

    #[test]
    fn exhausted_retries_degrade_to_populated_unreproduced_verdicts() {
        let (sherlock, mut explanation) = explained();
        // More failures than attempts: every trial of both causes fails.
        let runner = MockRunner::new(&["alpha", "zeta"], &["zeta"]).flaky(99);
        let cfg = InterventionConfig { trials: 2, ..Default::default() };
        let report = validate_explanation(&mut explanation, &runner, sherlock.params(), &cfg);
        // Controls never fail (the mock's flakiness is inject-only):
        // 2 candidates × 2 trials exhaust their attempts.
        assert_eq!(report.trial_failures, 4);
        assert_eq!(explanation.interventions.len(), 2, "verdicts still populated");
        assert!(explanation.interventions.iter().all(|v| !v.verdict.reproduced));
        assert!(explanation.interventions.iter().all(|v| v.verdict.trials == 2));
    }

    #[test]
    fn blown_budget_degrades_cooperatively() {
        let (sherlock, mut explanation) = explained();
        let runner = MockRunner::new(&["alpha", "zeta"], &["zeta"]);
        let cfg = InterventionConfig {
            budget: DiagnosisBudget::unlimited().with_deadline_ms(0),
            ..Default::default()
        };
        let report = validate_explanation(&mut explanation, &runner, sherlock.params(), &cfg);
        assert_eq!(report.trial_failures, report.trials_run);
        assert_eq!(explanation.interventions.len(), 2, "verdicts populated even over budget");
        assert!(explanation.interventions.iter().all(|v| !v.verdict.reproduced));
    }

    #[test]
    fn panicking_candidate_is_isolated_to_its_own_trials() {
        let (mut sherlock, _) = explained();
        sherlock.repository_mut().add(CausalModel {
            cause: crate::chaos::PANIC_INTERVENTION.into(),
            predicates: vec![Predicate::gt("signal", 40.0)],
            merged_from: 1,
        });
        let incident = trial_dataset(true, 0xA0);
        let mut explanation = sherlock.explain(&incident.data, &incident.abnormal, None);
        let runner = MockRunner::new(&["alpha", "zeta"], &["zeta"]);
        let cfg = InterventionConfig::default();
        let report = crate::chaos::quiet_panics(|| {
            validate_explanation(&mut explanation, &runner, sherlock.params(), &cfg)
        });
        assert_eq!(report.candidates, 3);
        assert_eq!(report.panics_isolated, cfg.trials, "{report:?}");
        let chaos = explanation
            .interventions
            .iter()
            .find(|v| v.cause == crate::chaos::PANIC_INTERVENTION)
            .expect("verdict populated for the panicking candidate");
        assert!(!chaos.verdict.reproduced);
        // The healthy candidate's verdict is untouched.
        assert!(explanation
            .interventions
            .iter()
            .any(|v| v.cause == "zeta" && v.verdict.reproduced));
    }

    #[test]
    fn no_predicates_means_no_verdicts() {
        let (sherlock, mut explanation) = explained();
        explanation.predicates.clear();
        let runner = MockRunner::new(&["alpha"], &["alpha"]);
        let report = validate_explanation(
            &mut explanation,
            &runner,
            sherlock.params(),
            &InterventionConfig::default(),
        );
        assert_eq!(report, InterventionReport::default());
        assert!(explanation.interventions.is_empty());
    }

    #[test]
    fn uninjectable_causes_are_skipped_not_failed() {
        let (sherlock, mut explanation) = explained();
        let runner = MockRunner::new(&["zeta"], &["zeta"]);
        let report = validate_explanation(
            &mut explanation,
            &runner,
            sherlock.params(),
            &InterventionConfig::default(),
        );
        assert_eq!(report.candidates, 1);
        assert_eq!(explanation.interventions.len(), 1);
        assert_eq!(explanation.interventions[0].cause, "zeta");
    }
}
