#![warn(missing_docs)]
// Diagnosis must degrade gracefully, never panic: unwrap/expect are banned in
// library code (tests may use them freely). See sherlock-lint's panic-path rule.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! The DBSherlock algorithm: performance diagnosis for transactional
//! databases.
//!
//! A from-scratch Rust implementation of "DBSherlock: A Performance
//! Diagnostic Tool for Transactional Databases" (Yoon, Niu, Mozafari —
//! SIGMOD 2016):
//!
//! * **Predicate generation** (§§3–4): partition space, labeling, noise
//!   filtering, gap filling, extraction — [`generate`], [`partition`],
//!   [`label`], [`filter`], [`fill`], [`extract`].
//! * **Domain knowledge** (§5): rules validated by a mutual-information
//!   independence test prune secondary symptoms — [`domain`].
//! * **Causal models** (§6): confidence (Eq. 3), ranking, merging —
//!   [`causal`], [`merge`].
//! * **Automatic anomaly detection** (§7): potential power + DBSCAN —
//!   [`detect`].
//! * **Façade** ([`Sherlock`]): explain → feedback → improved diagnoses.
//!
//! # Quickstart
//!
//! ```
//! use dbsherlock_core::prelude::*;
//! use dbsherlock_telemetry::{AttributeMeta, Dataset, Region, Schema, Value};
//!
//! // Telemetry with an obvious anomaly in rows 60..80.
//! let schema = Schema::from_attrs([AttributeMeta::numeric("cpu")]).unwrap();
//! let mut data = Dataset::new(schema);
//! for i in 0..120 {
//!     let cpu = if (60..80).contains(&i) { 95.0 } else { 20.0 } + (i % 5) as f64;
//!     data.push_row(i as f64, &[Value::Num(cpu)]).unwrap();
//! }
//!
//! let mut sherlock = Sherlock::new(SherlockParams::default());
//! let abnormal = Region::from_range(60..80);
//! let explanation = sherlock.explain(&data, &abnormal, None);
//! assert!(explanation.predicates_display().contains("cpu >"));
//!
//! // The DBA confirms the diagnosis; future anomalies match the model.
//! sherlock.feedback("runaway batch job", &explanation.predicates);
//! let again = sherlock.explain(&data, &abnormal, None);
//! assert_eq!(again.top_cause().unwrap().cause, "runaway batch job");
//! ```

pub mod actions;
pub mod argv;
pub mod budget;
pub mod causal;
pub mod chaos;
pub mod detect;
pub mod diagnose;
pub mod domain;
pub mod error;
pub mod exec;
pub mod extract;
pub mod fill;
pub mod filter;
#[cfg(test)]
pub(crate) mod fixtures;
pub mod generate;
pub mod intervene;
pub mod label;
pub mod merge;
pub mod params;
pub mod partition;
pub mod predicate;
#[cfg(any(test, feature = "scalar-shim"))]
pub mod scalar;
pub mod separation;
pub mod store;

pub use actions::{ActionLog, AutoAction, AutoRemediationPolicy, Decision, Remediation};
pub use argv::ArgScan;
pub use budget::{ArmedBudget, CancelFlag, DiagnosisBudget};
pub use causal::{Accuracy, CausalModel, ModelRepository, RankedCause};
pub use detect::{detect_anomaly, potential_power, try_detect_anomaly, Detection};
pub use diagnose::{Case, Explanation, Sherlock};
pub use domain::{independence_factor, DomainKnowledge, Rule};
pub use error::SherlockError;
pub use exec::{par_map_indexed, try_par_map_indexed, ExecPolicy};
pub use generate::{
    generate_predicates, generate_predicates_ablated, generate_predicates_snapshot,
    try_generate_predicates, try_generate_predicates_snapshot, AblationFlags, GeneratedPredicate,
};
pub use intervene::{
    attempt_seed, trial_seed, validate_explanation, CauseVerdict, InterventionConfig,
    InterventionReport, InterventionRunner, InterventionVerdict, TrialRun,
};
pub use merge::{merge_all, merge_models, merge_predicates};
pub use params::{SherlockParams, SherlockParamsBuilder};
pub use partition::{PartitionLabel, PartitionSpace};
pub use predicate::{display_conjunction, Predicate, PredicateOp};
pub use separation::{partition_separation_power, separation_power};
pub use store::{ModelStore, StoreFault, StoreReport};

/// The convenient single import for typical users of the engine.
///
/// ```
/// use dbsherlock_core::prelude::*;
/// let params = SherlockParams::builder().exec(ExecPolicy::Serial).build().unwrap();
/// let _sherlock = Sherlock::new(params);
/// ```
pub mod prelude {
    pub use crate::budget::{CancelFlag, DiagnosisBudget};
    pub use crate::diagnose::{Case, Explanation, Sherlock};
    pub use crate::error::SherlockError;
    pub use crate::exec::ExecPolicy;
    pub use crate::generate::GeneratedPredicate;
    pub use crate::intervene::{
        InterventionConfig, InterventionRunner, InterventionVerdict, TrialRun,
    };
    pub use crate::store::ModelStore;
    pub use crate::{RankedCause, SherlockParams, SherlockParamsBuilder};
    pub use dbsherlock_telemetry::{CategoricalView, ColumnView, ColumnarSnapshot, NumericView};
}
