//! Diagnosis budgets: deadlines, size limits, and cooperative cancellation.
//!
//! The engine's accumulated causal models make it long-lived infrastructure,
//! and long-lived infrastructure meets runaway inputs: a telemetry file with
//! millions of rows, a partition count fat-fingered into the billions, a
//! diagnosis that a caller no longer wants. A [`DiagnosisBudget`] bounds a
//! diagnosis along three axes:
//!
//! * **Wall-clock deadline** — checked cooperatively between pipeline units
//!   (per attribute in generation and detection, per model in ranking, per
//!   case in a batch). A blown deadline surfaces as
//!   [`SherlockError::DeadlineExceeded`] for the slots that did not finish;
//!   completed slots keep their results.
//! * **Size limits** — maximum rows per dataset and partitions per
//!   attribute, rejected up front as [`SherlockError::BudgetExceeded`].
//!   Unlike the deadline these are deterministic: the same input is always
//!   admitted or always rejected.
//! * **Cancellation** — a [`CancelFlag`] shared with the caller; raising it
//!   stops the diagnosis at the next cooperative check with
//!   [`SherlockError::Cancelled`].
//!
//! The budget is *configuration* and lives on
//! [`SherlockParams`](crate::SherlockParams); at each public entry point it
//! is [armed](DiagnosisBudget::arm) into an [`ArmedBudget`] carrying the
//! start instant, which the pipeline stages then consult. The default budget
//! is unlimited, so existing callers see no behavior change.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::SherlockError;

/// A shared, thread-safe cancellation flag.
///
/// Clone it, hand one copy to [`DiagnosisBudget::with_cancel_flag`], keep
/// the other, and call [`cancel`](CancelFlag::cancel) from any thread to
/// stop in-flight diagnoses at their next cooperative check.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, unraised flag.
    pub fn new() -> Self {
        CancelFlag::default()
    }

    /// Raise the flag; every budget holding a clone observes it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has the flag been raised?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Two flags are equal when they share the same underlying atomic (clones of
/// one another), mirroring their observable behavior.
impl PartialEq for CancelFlag {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Resource limits for one diagnosis (or one batch of diagnoses).
///
/// Everything defaults to unlimited; see the [module docs](self) for the
/// semantics of each axis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiagnosisBudget {
    deadline_ms: Option<u64>,
    max_rows: Option<usize>,
    max_partitions: Option<usize>,
    cancel: Option<CancelFlag>,
}

impl DiagnosisBudget {
    /// No limits at all (the default).
    pub fn unlimited() -> Self {
        DiagnosisBudget::default()
    }

    /// Limit wall-clock time. The clock starts at [`arm`](Self::arm) — i.e.
    /// when `explain`/`explain_batch`/`detect` is entered — and covers the
    /// whole call, batch included.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Reject datasets with more than `rows` rows.
    pub fn with_max_rows(mut self, rows: usize) -> Self {
        self.max_rows = Some(rows);
        self
    }

    /// Reject parameter sets asking for more than `partitions` partitions
    /// per attribute.
    pub fn with_max_partitions(mut self, partitions: usize) -> Self {
        self.max_partitions = Some(partitions);
        self
    }

    /// Attach a cancellation flag (keep a clone to raise it).
    pub fn with_cancel_flag(mut self, flag: CancelFlag) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// The configured deadline, if any.
    pub fn deadline_ms(&self) -> Option<u64> {
        self.deadline_ms
    }

    /// The configured row limit, if any.
    pub fn max_rows(&self) -> Option<usize> {
        self.max_rows
    }

    /// The configured partition limit, if any.
    pub fn max_partitions(&self) -> Option<usize> {
        self.max_partitions
    }

    /// Is every axis unlimited (the armed checks all no-ops)?
    pub fn is_unlimited(&self) -> bool {
        self.deadline_ms.is_none()
            && self.max_rows.is_none()
            && self.max_partitions.is_none()
            && self.cancel.is_none()
    }

    /// Start the clock: produce the [`ArmedBudget`] the pipeline stages
    /// consult. Called once per public entry point, so one deadline covers
    /// one `explain` call or one whole `explain_batch`.
    pub fn arm(&self) -> ArmedBudget {
        ArmedBudget { config: self.clone(), started: Instant::now() }
    }
}

/// A [`DiagnosisBudget`] with a running clock, shared by reference across
/// the worker threads of one diagnosis.
#[derive(Debug, Clone)]
pub struct ArmedBudget {
    config: DiagnosisBudget,
    started: Instant,
}

impl ArmedBudget {
    /// An armed unlimited budget — the no-op default threaded through the
    /// infallible public paths.
    pub fn unlimited() -> Self {
        DiagnosisBudget::unlimited().arm()
    }

    /// Cooperative checkpoint: fails when the flag is raised or the
    /// deadline has passed. Call between independent units of work; `stage`
    /// labels the resulting error.
    pub fn check(&self, stage: &'static str) -> Result<(), SherlockError> {
        if let Some(flag) = &self.config.cancel {
            if flag.is_cancelled() {
                return Err(SherlockError::Cancelled { stage });
            }
        }
        if let Some(budget_ms) = self.config.deadline_ms {
            if self.started.elapsed() >= Duration::from_millis(budget_ms) {
                return Err(SherlockError::DeadlineExceeded { stage, budget_ms });
            }
        }
        Ok(())
    }

    /// Up-front admission control for one case: row count against
    /// `max_rows`, requested partitions against `max_partitions`.
    /// Deterministic — independent of wall clock and thread schedule.
    pub fn admit(&self, n_rows: usize, n_partitions: usize) -> Result<(), SherlockError> {
        if let Some(limit) = self.config.max_rows {
            if n_rows > limit {
                return Err(SherlockError::BudgetExceeded { what: "rows", actual: n_rows, limit });
            }
        }
        if let Some(limit) = self.config.max_partitions {
            if n_partitions > limit {
                return Err(SherlockError::BudgetExceeded {
                    what: "partitions",
                    actual: n_partitions,
                    limit,
                });
            }
        }
        Ok(())
    }

    /// Time elapsed since the budget was armed.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_admits_everything() {
        let armed = ArmedBudget::unlimited();
        assert!(armed.check("anywhere").is_ok());
        assert!(armed.admit(usize::MAX, usize::MAX).is_ok());
        assert!(DiagnosisBudget::default().is_unlimited());
    }

    #[test]
    fn zero_deadline_fires_immediately() {
        let armed = DiagnosisBudget::unlimited().with_deadline_ms(0).arm();
        assert!(matches!(
            armed.check("generate"),
            Err(SherlockError::DeadlineExceeded { stage: "generate", budget_ms: 0 })
        ));
    }

    #[test]
    fn generous_deadline_passes() {
        let armed = DiagnosisBudget::unlimited().with_deadline_ms(3_600_000).arm();
        assert!(armed.check("rank").is_ok());
    }

    #[test]
    fn size_limits_are_deterministic() {
        let armed = DiagnosisBudget::unlimited().with_max_rows(100).with_max_partitions(500).arm();
        assert!(armed.admit(100, 500).is_ok());
        assert!(matches!(
            armed.admit(101, 500),
            Err(SherlockError::BudgetExceeded { what: "rows", actual: 101, limit: 100 })
        ));
        assert!(matches!(
            armed.admit(100, 501),
            Err(SherlockError::BudgetExceeded { what: "partitions", actual: 501, limit: 500 })
        ));
    }

    #[test]
    fn cancellation_is_observed_via_clones() {
        let flag = CancelFlag::new();
        let armed = DiagnosisBudget::unlimited().with_cancel_flag(flag.clone()).arm();
        assert!(armed.check("rank").is_ok());
        flag.cancel();
        assert!(matches!(armed.check("rank"), Err(SherlockError::Cancelled { stage: "rank" })));
    }

    #[test]
    fn flag_equality_is_identity() {
        let a = CancelFlag::new();
        let clone = a.clone();
        let b = CancelFlag::new();
        assert_eq!(a, clone);
        assert_ne!(a, b);
        // Budgets compare accordingly (params carry budgets and derive
        // PartialEq).
        let with_a = DiagnosisBudget::unlimited().with_cancel_flag(a);
        let with_clone = DiagnosisBudget::unlimited().with_cancel_flag(clone);
        let with_b = DiagnosisBudget::unlimited().with_cancel_flag(b);
        assert_eq!(with_a, with_clone);
        assert_ne!(with_a, with_b);
    }
}
