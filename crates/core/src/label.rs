//! Partition labeling (paper §4.2).
//!
//! Numeric attributes use the *purity* rule: a partition is `Abnormal` only
//! when every tuple it contains lies in the abnormal region, `Normal` only
//! when every tuple lies in the normal region, and `Empty` otherwise
//! (no tuples, or mixed). Categorical attributes — much less noisy — use a
//! *majority* rule on the abnormal/normal counts. Tuples outside both
//! regions are ignored entirely (§4).

use dbsherlock_telemetry::{ColumnView, Dataset, Region};

use crate::partition::{PartitionLabel, PartitionSpace};

/// Label every partition of `space` (built for `attr_id` over `dataset`)
/// from the user's `abnormal` and `normal` regions.
pub fn label_partitions(
    dataset: &Dataset,
    attr_id: usize,
    space: &PartitionSpace,
    abnormal: &Region,
    normal: &Region,
) -> Vec<PartitionLabel> {
    label_partitions_view(dataset.column(attr_id), space, abnormal, normal)
}

/// Columnar labeling kernel: two count passes over the region indices of
/// one attribute-contiguous column, then one purity/majority fold over
/// the hit counts. Kind mismatches between `view` and `space` yield all-
/// `Empty` labels rather than a panic; upstream generation never produces
/// one.
pub fn label_partitions_view(
    view: ColumnView<'_>,
    space: &PartitionSpace,
    abnormal: &Region,
    normal: &Region,
) -> Vec<PartitionLabel> {
    match (space, view) {
        (PartitionSpace::Numeric { .. }, ColumnView::Numeric(v)) => {
            label_numeric(v.as_slice(), space, abnormal, normal)
        }
        (PartitionSpace::Categorical { .. }, ColumnView::Categorical(c)) => {
            label_categorical(c.ids, space, abnormal, normal)
        }
        _ => vec![PartitionLabel::Empty; space.len()],
    }
}

fn label_numeric(
    values: &[f64],
    space: &PartitionSpace,
    abnormal: &Region,
    normal: &Region,
) -> Vec<PartitionLabel> {
    let Some(binner) = space.numeric_binner() else {
        return vec![PartitionLabel::Empty; space.len()];
    };
    let mut abnormal_hits = vec![0usize; space.len()];
    let mut normal_hits = vec![0usize; space.len()];
    // Rows outside the column (possible only on malformed regions) are
    // skipped, like non-finite values.
    for &row in abnormal.indices() {
        if let Some(j) = values.get(row).copied().and_then(|v| binner.bin(v)) {
            if let Some(hits) = abnormal_hits.get_mut(j) {
                *hits += 1;
            }
        }
    }
    for &row in normal.indices() {
        if let Some(j) = values.get(row).copied().and_then(|v| binner.bin(v)) {
            if let Some(hits) = normal_hits.get_mut(j) {
                *hits += 1;
            }
        }
    }
    abnormal_hits
        .iter()
        .zip(&normal_hits)
        .map(|(&a, &n)| match (a, n) {
            (0, 0) => PartitionLabel::Empty,
            (_, 0) => PartitionLabel::Abnormal,
            (0, _) => PartitionLabel::Normal,
            // Mixed partitions carry no separation signal.
            _ => PartitionLabel::Empty,
        })
        .collect()
}

fn label_categorical(
    ids: &[u32],
    space: &PartitionSpace,
    abnormal: &Region,
    normal: &Region,
) -> Vec<PartitionLabel> {
    let mut abnormal_hits = vec![0usize; space.len()];
    let mut normal_hits = vec![0usize; space.len()];
    for &row in abnormal.indices() {
        if let Some(hits) = ids.get(row).and_then(|&id| abnormal_hits.get_mut(id as usize)) {
            *hits += 1;
        }
    }
    for &row in normal.indices() {
        if let Some(hits) = ids.get(row).and_then(|&id| normal_hits.get_mut(id as usize)) {
            *hits += 1;
        }
    }
    abnormal_hits
        .iter()
        .zip(&normal_hits)
        .map(|(&a, &n)| {
            // Majority rule: P_j(A) > P_j(N) -> Abnormal, < -> Normal,
            // tie (including 0-0) -> Empty (§4.2).
            match a.cmp(&n) {
                std::cmp::Ordering::Greater => PartitionLabel::Abnormal,
                std::cmp::Ordering::Less => PartitionLabel::Normal,
                std::cmp::Ordering::Equal => PartitionLabel::Empty,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{categorical_dataset, numeric_dataset};

    #[test]
    fn numeric_purity_rule() {
        // Values 0..10; rows 0..5 normal (values 0-4), rows 5..10 abnormal
        // (values 5-9); 5 partitions of width 2 (domain [0,9]).
        let values: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let d = numeric_dataset(&values);
        let space = PartitionSpace::build(&d, 0, 3).unwrap(); // [0,3),[3,6),[6,9]
        let abnormal = Region::from_range(5..10);
        let normal = Region::from_range(0..5);
        let labels = label_partitions(&d, 0, &space, &abnormal, &normal);
        // Partition 0: values 0,1,2 all normal. Partition 1: values 3,4
        // normal but 5 abnormal -> mixed -> Empty. Partition 2: 6..9 all
        // abnormal.
        assert_eq!(
            labels,
            vec![PartitionLabel::Normal, PartitionLabel::Empty, PartitionLabel::Abnormal]
        );
    }

    #[test]
    fn rows_outside_both_regions_are_ignored() {
        let values = [0.0, 1.0, 8.0, 9.0];
        let d = numeric_dataset(&values);
        let space = PartitionSpace::build(&d, 0, 2).unwrap();
        // Row 1 (value 1.0) in neither region: partition 0 stays pure.
        let abnormal = Region::from_indices([2, 3]);
        let normal = Region::from_indices([0]);
        let labels = label_partitions(&d, 0, &space, &abnormal, &normal);
        assert_eq!(labels, vec![PartitionLabel::Normal, PartitionLabel::Abnormal]);
    }

    #[test]
    fn empty_partition_in_the_middle() {
        let values = [0.0, 0.5, 9.5, 10.0];
        let d = numeric_dataset(&values);
        let space = PartitionSpace::build(&d, 0, 5).unwrap();
        let abnormal = Region::from_indices([2, 3]);
        let normal = Region::from_indices([0, 1]);
        let labels = label_partitions(&d, 0, &space, &abnormal, &normal);
        assert_eq!(
            labels,
            vec![
                PartitionLabel::Normal,
                PartitionLabel::Empty,
                PartitionLabel::Empty,
                PartitionLabel::Empty,
                PartitionLabel::Abnormal
            ]
        );
    }

    #[test]
    fn categorical_majority_rule() {
        // "a" appears twice in abnormal, once in normal -> Abnormal.
        // "b" appears once each -> tie -> Empty.
        // "c" appears only in normal -> Normal.
        let d = categorical_dataset(&["a", "a", "b", "a", "b", "c"]);
        let abnormal = Region::from_indices([0, 1, 2]);
        let normal = Region::from_indices([3, 4, 5]);
        let space = PartitionSpace::build(&d, 0, 0).unwrap();
        let labels = label_partitions(&d, 0, &space, &abnormal, &normal);
        assert_eq!(
            labels,
            vec![PartitionLabel::Abnormal, PartitionLabel::Empty, PartitionLabel::Normal]
        );
    }
}
