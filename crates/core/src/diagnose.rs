//! The end-to-end diagnosis façade (paper Fig. 2, steps 4–6).
//!
//! [`Sherlock`] bundles the parameters, the optional domain knowledge, and
//! the accumulated causal models. A diagnosis session is:
//!
//! 1. [`Sherlock::explain`] — the user hands over a dataset and the region
//!    they consider abnormal; DBSherlock returns generated predicates plus
//!    every stored cause whose confidence clears `λ`, best first.
//! 2. The user identifies the real cause with those clues and calls
//!    [`Sherlock::feedback`]; the predicates become a causal model (merged
//!    with any existing model of the same cause).
//! 3. [`Sherlock::detect`] proposes an abnormal region automatically when
//!    the user has none (§7).

use dbsherlock_telemetry::{Dataset, Region};

use crate::actions::{ActionLog, Remediation};
use crate::budget::ArmedBudget;
use crate::causal::{CausalModel, ModelRepository, RankedCause};
use crate::detect::{try_detect_anomaly, Detection};
use crate::domain::DomainKnowledge;
use crate::error::SherlockError;
use crate::exec::{try_par_map_indexed, ExecPolicy};
use crate::generate::{try_generate_predicates_snapshot, GeneratedPredicate};
use crate::intervene::{
    validate_explanation, CauseVerdict, InterventionConfig, InterventionReport, InterventionRunner,
};
use crate::params::SherlockParams;
use crate::predicate::display_conjunction;

/// One diagnosis request, for [`Sherlock::explain_batch`].
///
/// Borrows its telemetry: a batch is a slice of views over datasets the
/// caller already holds, so batching adds no copies.
#[derive(Debug, Clone, Copy)]
pub struct Case<'a> {
    /// The telemetry to diagnose.
    pub dataset: &'a Dataset,
    /// The region the user (or the detector) flagged as abnormal.
    pub abnormal: &'a Region,
    /// Explicit normal region; `None` uses the complement of `abnormal`.
    pub normal: Option<&'a Region>,
}

impl<'a> Case<'a> {
    /// A case whose normal region is the complement of `abnormal`.
    pub fn new(dataset: &'a Dataset, abnormal: &'a Region) -> Self {
        Case { dataset, abnormal, normal: None }
    }

    /// Attach an explicit normal region.
    pub fn with_normal(mut self, normal: &'a Region) -> Self {
        self.normal = Some(normal);
        self
    }
}

/// A complete explanation for one user-specified anomaly.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Predicates surviving generation + domain-knowledge pruning, in
    /// schema order.
    pub predicates: Vec<GeneratedPredicate>,
    /// Causes with confidence ≥ λ, in decreasing confidence order.
    pub causes: Vec<RankedCause>,
    /// Every stored cause's confidence (superset of `causes`), for
    /// margin-of-confidence analyses.
    pub all_causes: Vec<RankedCause>,
    /// Interventional verdicts, one per validated candidate. Empty until
    /// the explanation is passed through
    /// [`validate_explanation`](crate::intervene::validate_explanation)
    /// (directly or via [`Sherlock::try_explain_validated`]).
    pub interventions: Vec<CauseVerdict>,
}

impl Explanation {
    /// Paper-style rendering of the predicate conjunction.
    pub fn predicates_display(&self) -> String {
        let predicates: Vec<_> = self.predicates.iter().map(|g| g.predicate.clone()).collect();
        display_conjunction(&predicates)
    }

    /// The most confident cause, if any cleared λ.
    pub fn top_cause(&self) -> Option<&RankedCause> {
        self.causes.first()
    }
}

/// The DBSherlock engine: parameters + domain knowledge + causal models +
/// remediation memory.
#[derive(Debug, Clone, Default)]
pub struct Sherlock {
    params: SherlockParams,
    domain: DomainKnowledge,
    repository: ModelRepository,
    actions: ActionLog,
}

impl Sherlock {
    /// Engine with the given parameters and no domain knowledge.
    pub fn new(params: SherlockParams) -> Self {
        Sherlock { params, ..Sherlock::default() }
    }

    /// Install domain knowledge (builder style).
    pub fn with_domain_knowledge(mut self, domain: DomainKnowledge) -> Self {
        self.domain = domain;
        self
    }

    /// Current parameters.
    pub fn params(&self) -> &SherlockParams {
        &self.params
    }

    /// The stored causal models.
    pub fn repository(&self) -> &ModelRepository {
        &self.repository
    }

    /// Mutable access to the repository (used by experiment harnesses that
    /// construct models from ground truth rather than via `feedback`).
    pub fn repository_mut(&mut self) -> &mut ModelRepository {
        &mut self.repository
    }

    /// Explain an anomaly. `normal` defaults to the complement of
    /// `abnormal` when the user did not mark a normal region explicitly
    /// (§2.2).
    ///
    /// Infallible by design — degenerate input (empty dataset, regions that
    /// clip to nothing) yields an empty [`Explanation`]. Callers that need
    /// to distinguish "nothing found" from "nothing to look at" should use
    /// [`try_explain`](Self::try_explain).
    pub fn explain(
        &self,
        dataset: &Dataset,
        abnormal: &Region,
        normal: Option<&Region>,
    ) -> Explanation {
        self.try_explain(dataset, abnormal, normal).unwrap_or(Explanation {
            predicates: Vec::new(),
            causes: Vec::new(),
            all_causes: Vec::new(),
            interventions: Vec::new(),
        })
    }

    /// [`explain`](Self::explain) that reports degenerate input — and
    /// blown budgets or caught pipeline panics — instead of returning an
    /// empty explanation. The budget of [`SherlockParams::budget`] is
    /// armed here, so its deadline covers this one call.
    pub fn try_explain(
        &self,
        dataset: &Dataset,
        abnormal: &Region,
        normal: Option<&Region>,
    ) -> Result<Explanation, SherlockError> {
        let armed = self.params.budget.arm();
        // Same isolation boundary as a batch case: a pipeline bug surfaces
        // as `TaskPanicked`, never as an unwinding caller thread.
        try_par_map_indexed(ExecPolicy::Serial, "explain", &[()], |_, _| {
            self.explain_with(dataset, abnormal, normal, &self.params, &armed)
        })
        .pop()
        .unwrap_or(Err(SherlockError::EmptyInput("dataset")))
    }

    /// Diagnose many cases, fanning them out across the thread budget of
    /// [`SherlockParams::exec`]. Results come back in input order, one per
    /// case; a degenerate, over-budget, or even *panicking* case yields its
    /// own error without disturbing its neighbours — each case runs behind
    /// a panic-isolation boundary, and surviving cases are bit-identical to
    /// a clean serial run. Within each case the pipeline runs serially —
    /// the batch is the unit of parallelism, so output is identical to
    /// calling [`try_explain`](Self::try_explain) in a loop.
    ///
    /// The budget is armed once for the whole batch: a wall-clock deadline
    /// bounds the batch, degrading it to partial ranked results (cases that
    /// finished in time) plus per-case `DeadlineExceeded` errors.
    pub fn explain_batch(&self, cases: &[Case<'_>]) -> Vec<Result<Explanation, SherlockError>> {
        // Parallelism lives at the case level; nested per-attribute fan-out
        // would oversubscribe the pool.
        let inner = self.params.clone().with_exec(ExecPolicy::Serial);
        let armed = self.params.budget.arm();
        try_par_map_indexed(self.params.exec, "case", cases, |_, case| {
            self.explain_with(case.dataset, case.abnormal, case.normal, &inner, &armed)
        })
    }

    /// The single-case pipeline, parameterized so batch mode can force the
    /// inner stages serial and share one armed budget across cases.
    fn explain_with(
        &self,
        dataset: &Dataset,
        abnormal: &Region,
        normal: Option<&Region>,
        params: &SherlockParams,
        budget: &ArmedBudget,
    ) -> Result<Explanation, SherlockError> {
        budget.admit(dataset.n_rows(), params.n_partitions)?;
        if dataset.n_rows() == 0 {
            return Err(SherlockError::EmptyInput("dataset"));
        }
        // Clip to the rows that actually exist: with degraded telemetry the
        // user's regions may reference rows that lossy ingestion dropped.
        let n_rows = dataset.n_rows();
        let abnormal = &abnormal.clip(n_rows);
        if abnormal.is_empty() {
            return Err(SherlockError::EmptyRegion { what: "abnormal", n_rows });
        }
        let normal = match normal {
            Some(region) => region.clip(n_rows),
            None => abnormal.complement(n_rows),
        };
        if normal.is_empty() {
            return Err(SherlockError::EmptyRegion { what: "normal", n_rows });
        }
        let normal = &normal;
        // One columnar snapshot pins every attribute-contiguous slice for
        // the whole pass; kernels below never pay per-cell dispatch.
        let snapshot = dataset.snapshot();
        let raw = try_generate_predicates_snapshot(&snapshot, abnormal, normal, params, budget)?;
        let predicates = self.domain.prune(dataset, raw, params);
        let all_causes = self.repository.try_rank(dataset, abnormal, normal, params, budget)?;
        let causes = all_causes.iter().filter(|c| c.confidence >= params.lambda).cloned().collect();
        Ok(Explanation { predicates, causes, all_causes, interventions: Vec::new() })
    }

    /// [`try_explain`](Self::try_explain) through the row-wise reference
    /// kernels of [`scalar`](crate::scalar): same degenerate-input checks,
    /// same domain pruning and λ filter, but per-cell `value()` access and
    /// no budget or parallelism. Required to be bit-identical to the
    /// columnar path on every input — the determinism proptests and the
    /// `columnar_scaling` benchmark diff the two.
    #[cfg(any(test, feature = "scalar-shim"))]
    pub fn explain_scalar(
        &self,
        dataset: &Dataset,
        abnormal: &Region,
        normal: Option<&Region>,
    ) -> Result<Explanation, SherlockError> {
        if dataset.n_rows() == 0 {
            return Err(SherlockError::EmptyInput("dataset"));
        }
        let n_rows = dataset.n_rows();
        let abnormal = &abnormal.clip(n_rows);
        if abnormal.is_empty() {
            return Err(SherlockError::EmptyRegion { what: "abnormal", n_rows });
        }
        let normal = match normal {
            Some(region) => region.clip(n_rows),
            None => abnormal.complement(n_rows),
        };
        if normal.is_empty() {
            return Err(SherlockError::EmptyRegion { what: "normal", n_rows });
        }
        let normal = &normal;
        let raw = crate::scalar::generate_predicates(dataset, abnormal, normal, &self.params);
        let predicates = self.domain.prune(dataset, raw, &self.params);
        let all_causes =
            crate::scalar::rank(&self.repository, dataset, abnormal, normal, &self.params);
        let causes =
            all_causes.iter().filter(|c| c.confidence >= self.params.lambda).cloned().collect();
        Ok(Explanation { predicates, causes, all_causes, interventions: Vec::new() })
    }

    /// [`try_explain`](Self::try_explain), then interventionally validate
    /// the top-ranked causes against `runner` (§ interventional validation
    /// in `intervene`): each candidate's fault is re-injected and the
    /// explanation's own symptom signature is scored on the re-runs. The
    /// returned explanation carries one populated
    /// [`InterventionVerdict`](crate::intervene::InterventionVerdict) per
    /// candidate, with reproduced causes promoted to the front of the
    /// ranking when `cfg.promote` is set.
    ///
    /// Only the *explanation* can fail; trial-level trouble (runner errors,
    /// blown intervention budgets, panicking trials) degrades to
    /// not-reproduced verdicts counted in the report.
    pub fn try_explain_validated(
        &self,
        dataset: &Dataset,
        abnormal: &Region,
        normal: Option<&Region>,
        runner: &dyn InterventionRunner,
        cfg: &InterventionConfig,
    ) -> Result<(Explanation, InterventionReport), SherlockError> {
        let mut explanation = self.try_explain(dataset, abnormal, normal)?;
        let report = validate_explanation(&mut explanation, runner, &self.params, cfg);
        Ok((explanation, report))
    }

    /// [`explain_batch`](Self::explain_batch) followed by interventional
    /// validation of every successful case. Cases fan out first (batch-level
    /// parallelism, one armed budget); validation then runs case-by-case
    /// with trial-level parallelism inside, so the thread pool is never
    /// oversubscribed by nested fan-outs. Per-case errors pass through
    /// untouched.
    pub fn explain_batch_validated(
        &self,
        cases: &[Case<'_>],
        runner: &dyn InterventionRunner,
        cfg: &InterventionConfig,
    ) -> Vec<Result<(Explanation, InterventionReport), SherlockError>> {
        self.explain_batch(cases)
            .into_iter()
            .map(|result| {
                result.map(|mut explanation| {
                    let report = validate_explanation(&mut explanation, runner, &self.params, cfg);
                    (explanation, report)
                })
            })
            .collect()
    }

    /// The user confirmed `cause` for an anomaly whose explanation carried
    /// `predicates`: store (and possibly merge) the causal model.
    pub fn feedback(&mut self, cause: &str, predicates: &[GeneratedPredicate]) {
        self.repository.add(CausalModel::from_feedback(cause, predicates));
    }

    /// [`feedback`](Self::feedback) that also records the remediation the
    /// DBA applied and whether it resolved the incident (paper §10's
    /// future work: stored actions become suggestions).
    pub fn feedback_with_action(
        &mut self,
        cause: &str,
        predicates: &[GeneratedPredicate],
        action: &str,
        resolved: bool,
    ) {
        self.feedback(cause, predicates);
        self.actions.record(cause, action, resolved);
    }

    /// Remembered remediations for a cause, best success rate first.
    pub fn suggested_actions(&self, cause: &str) -> Vec<&Remediation> {
        self.actions.suggestions(cause)
    }

    /// The remediation memory.
    pub fn action_log(&self) -> &ActionLog {
        &self.actions
    }

    /// Automatic anomaly detection (§7). Advisory: an over-budget or
    /// internally failing run degrades to `None`; use
    /// [`try_detect`](Self::try_detect) to see the error.
    pub fn detect(&self, dataset: &Dataset) -> Option<Detection> {
        self.try_detect(dataset).unwrap_or(None)
    }

    /// [`detect`](Self::detect) under the engine's
    /// [`DiagnosisBudget`](crate::DiagnosisBudget), surfacing blown
    /// deadlines, size-limit rejections, and caught panics instead of
    /// swallowing them.
    pub fn try_detect(&self, dataset: &Dataset) -> Result<Option<Detection>, SherlockError> {
        let armed = self.params.budget.arm();
        try_detect_anomaly(dataset, &self.params, &armed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsherlock_telemetry::{AttributeMeta, Schema, Value};

    /// `signal` leaps in rows 30..45.
    fn dataset() -> (Dataset, Region) {
        let schema = Schema::from_attrs([
            AttributeMeta::numeric("signal"),
            AttributeMeta::numeric("steady"),
        ])
        .unwrap();
        let mut d = Dataset::new(schema);
        for i in 0..80 {
            let abnormal = (30..45).contains(&i);
            // Fractional jitter keeps values distinct, like real telemetry.
            let jitter = (i as f64 * 0.317).sin() * 0.9;
            let signal =
                if abnormal { 80.0 + (i % 4) as f64 } else { 5.0 + (i % 6) as f64 } + jitter;
            d.push_row(i as f64, &[Value::Num(signal), Value::Num(40.0 + (i % 3) as f64)]).unwrap();
        }
        (d, Region::from_range(30..45))
    }

    #[test]
    fn explain_then_feedback_then_rediagnose() {
        let (d, abnormal) = dataset();
        let mut sherlock = Sherlock::new(SherlockParams::default());
        let explanation = sherlock.explain(&d, &abnormal, None);
        assert!(!explanation.predicates.is_empty());
        assert!(explanation.causes.is_empty(), "no models yet");
        assert!(explanation.predicates_display().contains("signal"));

        sherlock.feedback("cache stampede", &explanation.predicates);
        assert_eq!(sherlock.repository().models().len(), 1);

        // Re-diagnosing the same anomaly must surface the stored cause.
        let second = sherlock.explain(&d, &abnormal, None);
        let top = second.top_cause().expect("cause above lambda");
        assert_eq!(top.cause, "cache stampede");
        assert!(top.confidence > 0.5);
    }

    #[test]
    fn explicit_normal_region_is_honoured() {
        let (d, abnormal) = dataset();
        let sherlock = Sherlock::new(SherlockParams::default());
        // Giving only rows 0..10 as normal (instead of the complement)
        // must still find the signal predicate.
        let normal = Region::from_range(0..10);
        let explanation = sherlock.explain(&d, &abnormal, Some(&normal));
        assert!(explanation.predicates.iter().any(|p| p.predicate.attr == "signal"));
    }

    #[test]
    fn low_confidence_causes_are_hidden_but_listed() {
        let (d, abnormal) = dataset();
        let mut sherlock = Sherlock::new(SherlockParams::default());
        // A model that fits nothing in this dataset.
        sherlock.repository_mut().add(CausalModel {
            cause: "red herring".into(),
            predicates: vec![crate::predicate::Predicate::lt("signal", -100.0)],
            merged_from: 1,
        });
        let explanation = sherlock.explain(&d, &abnormal, None);
        assert!(explanation.causes.is_empty());
        assert_eq!(explanation.all_causes.len(), 1);
    }

    #[test]
    fn explain_tolerates_regions_beyond_the_dataset() {
        let (d, _) = dataset();
        let sherlock = Sherlock::new(SherlockParams::default());
        // Regions defined over a healthier, longer dataset: rows ≥ 80 are
        // gone after lossy ingestion. Must clip, not panic.
        let abnormal = Region::from_indices((30..45).chain(100..150));
        let normal = Region::from_range(120..200);
        let explanation = sherlock.explain(&d, &abnormal, Some(&normal));
        // The explicit normal region clipped to nothing -> no predicates.
        assert!(explanation.predicates.is_empty());
        // With the implicit complement, the surviving in-range part of the
        // abnormal region still explains the anomaly.
        let explanation = sherlock.explain(&d, &abnormal, None);
        assert!(!explanation.predicates.is_empty());
    }

    #[test]
    fn explain_survives_fully_out_of_range_abnormal() {
        let (d, _) = dataset();
        let sherlock = Sherlock::new(SherlockParams::default());
        let abnormal = Region::from_range(500..600);
        let explanation = sherlock.explain(&d, &abnormal, None);
        assert!(explanation.predicates.is_empty());
        assert!(explanation.causes.is_empty());
    }

    #[test]
    fn explain_survives_nan_riddled_attributes() {
        let (mut d, abnormal) = dataset();
        // Poison one attribute completely and half of the other.
        {
            let col = d.numeric_mut(1).unwrap();
            col.iter_mut().for_each(|v| *v = f64::NAN);
        }
        {
            let col = d.numeric_mut(0).unwrap();
            col.iter_mut().step_by(2).for_each(|v| *v = f64::NAN);
        }
        let sherlock = Sherlock::new(SherlockParams::default());
        // Must complete without panicking; the signal may or may not
        // survive at 50% NaN density.
        let _ = sherlock.explain(&d, &abnormal, None);
    }

    #[test]
    fn explain_on_empty_dataset_is_empty() {
        let schema =
            dbsherlock_telemetry::Schema::from_attrs([AttributeMeta::numeric("x")]).unwrap();
        let d = Dataset::new(schema);
        let sherlock = Sherlock::new(SherlockParams::default());
        let explanation = sherlock.explain(&d, &Region::from_range(0..10), None);
        assert!(explanation.predicates.is_empty());
    }

    #[test]
    fn try_explain_reports_degenerate_input() {
        let (d, abnormal) = dataset();
        let sherlock = Sherlock::new(SherlockParams::default());
        let empty = Dataset::new(d.schema().clone());
        assert!(matches!(
            sherlock.try_explain(&empty, &abnormal, None),
            Err(SherlockError::EmptyInput("dataset"))
        ));
        assert!(matches!(
            sherlock.try_explain(&d, &Region::from_range(500..600), None),
            Err(SherlockError::EmptyRegion { what: "abnormal", .. })
        ));
        let everything = Region::from_range(0..80);
        assert!(matches!(
            sherlock.try_explain(&d, &everything, None),
            Err(SherlockError::EmptyRegion { what: "normal", .. })
        ));
        assert!(sherlock.try_explain(&d, &abnormal, None).is_ok());
    }

    #[test]
    fn explain_batch_preserves_case_order_and_isolates_errors() {
        let (d, abnormal) = dataset();
        let sherlock = Sherlock::new(SherlockParams::default());
        let out_of_range = Region::from_range(500..600);
        let prefix = Region::from_range(0..10);
        let cases = [
            Case::new(&d, &abnormal),
            Case::new(&d, &out_of_range),
            Case::new(&d, &abnormal).with_normal(&prefix),
        ];
        let results = sherlock.explain_batch(&cases);
        assert_eq!(results.len(), 3);
        assert!(results[0]
            .as_ref()
            .unwrap()
            .predicates
            .iter()
            .any(|p| p.predicate.attr == "signal"));
        assert!(matches!(results[1], Err(SherlockError::EmptyRegion { what: "abnormal", .. })));
        assert!(!results[2].as_ref().unwrap().predicates.is_empty());
    }

    #[test]
    fn explain_batch_matches_serial_explain() {
        let (d, abnormal) = dataset();
        let mut sherlock =
            Sherlock::new(SherlockParams::default().with_exec(ExecPolicy::Threads(4)));
        let first = sherlock.explain(&d, &abnormal, None);
        sherlock.feedback("cache stampede", &first.predicates);

        let cases: Vec<Case<'_>> = (0..6).map(|_| Case::new(&d, &abnormal)).collect();
        let batch = sherlock.explain_batch(&cases);
        let single = sherlock.explain(&d, &abnormal, None);
        for result in batch {
            let explanation = result.unwrap();
            assert_eq!(explanation.predicates_display(), single.predicates_display());
            let causes: Vec<_> =
                explanation.causes.iter().map(|c| (c.cause.clone(), c.confidence)).collect();
            let expect: Vec<_> =
                single.causes.iter().map(|c| (c.cause.clone(), c.confidence)).collect();
            assert_eq!(causes, expect);
        }
    }

    #[test]
    fn explain_batch_isolates_a_panicking_scorer_to_its_slot() {
        let (d, abnormal) = dataset();
        // A second dataset carrying the chaos attribute: scoring any model
        // against it panics inside the real rank stage.
        let schema = Schema::from_attrs([
            AttributeMeta::numeric("signal"),
            AttributeMeta::numeric(crate::chaos::PANIC_ATTR),
        ])
        .unwrap();
        let mut poisoned = Dataset::new(schema);
        for i in 0..80 {
            let signal = if (30..45).contains(&i) { 80.0 } else { 5.0 } + (i % 4) as f64;
            poisoned.push_row(i as f64, &[Value::Num(signal), Value::Num(1.0)]).unwrap();
        }

        let mut sherlock = Sherlock::new(SherlockParams::default());
        let first = sherlock.explain(&d, &abnormal, None);
        sherlock.feedback("cache stampede", &first.predicates);

        let cases =
            [Case::new(&d, &abnormal), Case::new(&poisoned, &abnormal), Case::new(&d, &abnormal)];
        // The deliberate panic is caught, but the default hook would still
        // print a backtrace per poisoned case.
        let results = crate::chaos::quiet_panics(|| sherlock.explain_batch(&cases));

        assert!(matches!(
            &results[1],
            Err(SherlockError::TaskPanicked { stage: "rank", message }) if message.contains("chaos")
        ));
        // The neighbours are untouched and identical to a clean run.
        let clean = sherlock.explain(&d, &abnormal, None);
        for i in [0, 2] {
            let e = results[i].as_ref().unwrap();
            assert_eq!(e.predicates_display(), clean.predicates_display());
            assert_eq!(e.causes.len(), clean.causes.len());
        }
    }

    #[test]
    fn explain_batch_deadline_degrades_to_per_case_errors() {
        let (d, abnormal) = dataset();
        let params = SherlockParams::default()
            .with_budget(crate::budget::DiagnosisBudget::unlimited().with_deadline_ms(0));
        let sherlock = Sherlock::new(params);
        let cases = [Case::new(&d, &abnormal), Case::new(&d, &abnormal)];
        for result in sherlock.explain_batch(&cases) {
            assert!(matches!(result, Err(SherlockError::DeadlineExceeded { .. })));
        }
        // try_detect honours the same budget; plain detect degrades to None.
        assert!(matches!(sherlock.try_detect(&d), Err(SherlockError::DeadlineExceeded { .. })));
        assert!(sherlock.detect(&d).is_none());
    }

    #[test]
    fn detect_finds_the_anomalous_window() {
        let (d, truth) = dataset();
        let sherlock = Sherlock::new(SherlockParams::default());
        let detection = sherlock.detect(&d).expect("detectable shift");
        assert!(detection.region.iou(&truth) > 0.6, "{:?}", detection.region.intervals());
    }
}
