//! Explanation predicates (paper §3).
//!
//! DBSherlock explains an anomaly as a conjunction of *simple* predicates,
//! one per attribute: `Attr < x`, `Attr > x`, `x < Attr < y` for numeric
//! attributes and `Attr ∈ {c1, ..., cl}` for categorical ones. More complex
//! shapes (disjunction, negation) are deliberately excluded for human
//! readability (§2.3, footnote 4).
//!
//! Categorical predicates carry category *labels*, not dictionary ids, so a
//! predicate learned on one dataset can be evaluated against another whose
//! dictionary assigned different ids.

use std::fmt;

use dbsherlock_telemetry::{ColumnView, Dataset, Dictionary};
use serde::{Deserialize, Serialize};

/// The comparison a predicate applies to its attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PredicateOp {
    /// `Attr < x`.
    Lt(f64),
    /// `Attr > x`.
    Gt(f64),
    /// `x < Attr < y`.
    Between(f64, f64),
    /// `Attr ∈ {labels}`.
    InSet(Vec<String>),
}

impl PredicateOp {
    /// Does a numeric value satisfy this op? Categorical ops return false.
    pub fn matches_num(&self, v: f64) -> bool {
        match *self {
            PredicateOp::Lt(x) => v < x,
            PredicateOp::Gt(x) => v > x,
            PredicateOp::Between(lo, hi) => lo < v && v < hi,
            PredicateOp::InSet(_) => false,
        }
    }

    /// Does a category label satisfy this op? Numeric ops return false.
    pub fn matches_label(&self, label: &str) -> bool {
        match self {
            PredicateOp::InSet(labels) => labels.iter().any(|l| l == label),
            _ => false,
        }
    }

    /// True for `Lt`/`Gt`/`Between`.
    pub fn is_numeric(&self) -> bool {
        !matches!(self, PredicateOp::InSet(_))
    }

    /// Per-dictionary-id satisfaction table: one label comparison per
    /// *distinct* category instead of one per row, so categorical masks
    /// and selectivities reduce to an id-indexed table lookup.
    pub fn category_table(&self, dict: &Dictionary) -> Vec<bool> {
        (0..dict.len() as u32)
            .map(|id| dict.label(id).map(|l| self.matches_label(l)).unwrap_or(false))
            .collect()
    }
}

/// One simple predicate over a named attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Attribute name (names travel across datasets; ids may not).
    pub attr: String,
    /// The comparison.
    pub op: PredicateOp,
}

impl Predicate {
    /// `attr < x`.
    pub fn lt(attr: impl Into<String>, x: f64) -> Self {
        Predicate { attr: attr.into(), op: PredicateOp::Lt(x) }
    }

    /// `attr > x`.
    pub fn gt(attr: impl Into<String>, x: f64) -> Self {
        Predicate { attr: attr.into(), op: PredicateOp::Gt(x) }
    }

    /// `lo < attr < hi`.
    pub fn between(attr: impl Into<String>, lo: f64, hi: f64) -> Self {
        Predicate { attr: attr.into(), op: PredicateOp::Between(lo, hi) }
    }

    /// `attr ∈ {labels}`.
    pub fn in_set(attr: impl Into<String>, labels: impl IntoIterator<Item = String>) -> Self {
        Predicate { attr: attr.into(), op: PredicateOp::InSet(labels.into_iter().collect()) }
    }

    /// Evaluate against row `row` of `dataset`. Unknown attributes, kind
    /// mismatches, and out-of-range rows evaluate to `false` (a predicate
    /// about an attribute a dataset lacks cannot support an anomaly
    /// there). Prefer [`fill_mask`](Self::fill_mask) /
    /// [`selectivity`](Self::selectivity) when evaluating more than a
    /// handful of rows: they resolve the attribute once per column.
    pub fn matches_row(&self, dataset: &Dataset, row: usize) -> bool {
        let Some(attr_id) = dataset.schema().id_of(&self.attr) else {
            return false;
        };
        match dataset.column(attr_id) {
            ColumnView::Numeric(v) => {
                v.as_slice().get(row).map(|&x| self.op.matches_num(x)).unwrap_or(false)
            }
            ColumnView::Categorical(c) => c
                .ids
                .get(row)
                .and_then(|&id| c.dict.label(id))
                .map(|l| self.op.matches_label(l))
                .unwrap_or(false),
        }
    }

    /// Columnar evaluation primitive: fill `mask[i] = row i satisfies
    /// self` over a whole column view. Attribute kind dispatch and
    /// dictionary lookups happen once per column; the loop per op is a
    /// branch-light scan of the attribute-contiguous slice. Kind
    /// mismatches fill `false` (same policy as
    /// [`matches_row`](Self::matches_row)).
    pub fn fill_mask(&self, view: ColumnView<'_>, mask: &mut Vec<bool>) {
        mask.clear();
        match view {
            ColumnView::Numeric(v) => {
                let values = v.as_slice();
                match self.op {
                    PredicateOp::Lt(x) => mask.extend(values.iter().map(|&v| v < x)),
                    PredicateOp::Gt(x) => mask.extend(values.iter().map(|&v| v > x)),
                    PredicateOp::Between(lo, hi) => {
                        mask.extend(values.iter().map(|&v| lo < v && v < hi))
                    }
                    PredicateOp::InSet(_) => mask.resize(values.len(), false),
                }
            }
            ColumnView::Categorical(c) => {
                if self.op.is_numeric() {
                    mask.resize(c.ids.len(), false);
                } else {
                    let table = self.op.category_table(c.dict);
                    mask.extend(
                        c.ids.iter().map(|&id| table.get(id as usize).copied().unwrap_or(false)),
                    );
                }
            }
        }
    }

    /// Fraction of the rows in `rows` that satisfy the predicate
    /// (`|Pred(T)| / |T|` in the paper's notation); `0.0` for no rows or
    /// an unknown attribute.
    pub fn selectivity(&self, dataset: &Dataset, rows: &[usize]) -> f64 {
        let Some(attr_id) = dataset.schema().id_of(&self.attr) else {
            return 0.0;
        };
        self.selectivity_view(dataset.column(attr_id), rows)
    }

    /// [`selectivity`](Self::selectivity) over an already-resolved column
    /// view: the hot-path form, with the op dispatch hoisted out of the
    /// row loop. Out-of-range rows count as non-matching.
    pub fn selectivity_view(&self, view: ColumnView<'_>, rows: &[usize]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        let hits = match view {
            ColumnView::Numeric(v) => {
                let values = v.as_slice();
                let count = |pred: &dyn Fn(f64) -> bool| {
                    rows.iter()
                        .filter(|&&r| values.get(r).map(|&v| pred(v)).unwrap_or(false))
                        .count()
                };
                match self.op {
                    PredicateOp::Lt(x) => count(&|v| v < x),
                    PredicateOp::Gt(x) => count(&|v| v > x),
                    PredicateOp::Between(lo, hi) => count(&|v| lo < v && v < hi),
                    PredicateOp::InSet(_) => 0,
                }
            }
            ColumnView::Categorical(c) => {
                if self.op.is_numeric() {
                    0
                } else {
                    let table = self.op.category_table(c.dict);
                    rows.iter()
                        .filter(|&&r| {
                            c.ids
                                .get(r)
                                .map(|&id| table.get(id as usize).copied().unwrap_or(false))
                                .unwrap_or(false)
                        })
                        .count()
                }
            }
        };
        hits as f64 / rows.len() as f64
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.op {
            PredicateOp::Lt(x) => write!(f, "{} < {x:.4}", self.attr),
            PredicateOp::Gt(x) => write!(f, "{} > {x:.4}", self.attr),
            PredicateOp::Between(lo, hi) => write!(f, "{lo:.4} < {} < {hi:.4}", self.attr),
            PredicateOp::InSet(labels) => {
                write!(f, "{} ∈ {{{}}}", self.attr, labels.join(", "))
            }
        }
    }
}

/// Pretty-print a conjunction of predicates the way the paper does
/// (`p1 ∧ p2 ∧ ...`).
pub fn display_conjunction(predicates: &[Predicate]) -> String {
    predicates.iter().map(Predicate::to_string).collect::<Vec<_>>().join(" ∧ ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsherlock_telemetry::{AttributeMeta, Schema, Value};

    fn dataset() -> Dataset {
        let schema = Schema::from_attrs([
            AttributeMeta::numeric("cpu"),
            AttributeMeta::categorical("state"),
        ])
        .unwrap();
        let mut d = Dataset::new(schema);
        let steady = d.intern(1, "steady").unwrap();
        let rotating = d.intern(1, "rotating").unwrap();
        d.push_row(0.0, &[Value::Num(10.0), steady]).unwrap();
        d.push_row(1.0, &[Value::Num(50.0), rotating]).unwrap();
        d.push_row(2.0, &[Value::Num(90.0), steady]).unwrap();
        d
    }

    #[test]
    fn numeric_ops() {
        assert!(PredicateOp::Lt(5.0).matches_num(4.9));
        assert!(!PredicateOp::Lt(5.0).matches_num(5.0));
        assert!(PredicateOp::Gt(5.0).matches_num(5.1));
        assert!(!PredicateOp::Gt(5.0).matches_num(5.0));
        assert!(PredicateOp::Between(1.0, 2.0).matches_num(1.5));
        assert!(!PredicateOp::Between(1.0, 2.0).matches_num(1.0));
        assert!(!PredicateOp::Between(1.0, 2.0).matches_num(2.0));
        assert!(!PredicateOp::InSet(vec!["a".into()]).matches_num(1.0));
    }

    #[test]
    fn categorical_ops() {
        let op = PredicateOp::InSet(vec!["a".into(), "b".into()]);
        assert!(op.matches_label("a"));
        assert!(!op.matches_label("c"));
        assert!(!PredicateOp::Lt(1.0).matches_label("a"));
    }

    #[test]
    fn matches_rows_of_dataset() {
        let d = dataset();
        let p = Predicate::gt("cpu", 40.0);
        assert!(!p.matches_row(&d, 0));
        assert!(p.matches_row(&d, 1));
        let q = Predicate::in_set("state", ["rotating".to_string()]);
        assert!(!q.matches_row(&d, 0));
        assert!(q.matches_row(&d, 1));
    }

    #[test]
    fn unknown_attribute_never_matches() {
        let d = dataset();
        assert!(!Predicate::gt("nope", 0.0).matches_row(&d, 0));
    }

    #[test]
    fn kind_mismatch_never_matches() {
        let d = dataset();
        // Numeric predicate over categorical attribute and vice versa.
        assert!(!Predicate::gt("state", 0.0).matches_row(&d, 0));
        assert!(!Predicate::in_set("cpu", ["steady".to_string()]).matches_row(&d, 0));
    }

    #[test]
    fn selectivity_counts_fractions() {
        let d = dataset();
        let p = Predicate::gt("cpu", 40.0);
        assert_eq!(p.selectivity(&d, &[0, 1, 2]), 2.0 / 3.0);
        assert_eq!(p.selectivity(&d, &[]), 0.0);
    }

    #[test]
    fn display_is_paper_style() {
        assert_eq!(Predicate::gt("cpu", 40.0).to_string(), "cpu > 40.0000");
        assert_eq!(Predicate::between("x", 1.0, 2.0).to_string(), "1.0000 < x < 2.0000");
        let c = Predicate::in_set("s", ["a".to_string(), "b".to_string()]);
        assert_eq!(c.to_string(), "s ∈ {a, b}");
        let conj = display_conjunction(&[Predicate::lt("a", 1.0), Predicate::gt("b", 2.0)]);
        assert_eq!(conj, "a < 1.0000 ∧ b > 2.0000");
    }
}
