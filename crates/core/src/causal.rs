//! Causal models: user-confirmed causes with effect predicates (paper §6).
//!
//! A causal model is a simplified Halpern–Pearl model: a binary exogenous
//! *cause variable* (the DBA's diagnosis, e.g. "Log Rotation") whose truth
//! activates a set of *effect predicates*. At diagnosis time every stored
//! model is scored by its **confidence** (Eq. 3) — the average separation
//! power of its effect predicates in the partition space of the dataset
//! under diagnosis — and causes above the threshold `λ` are offered to the
//! user in decreasing confidence order.

use dbsherlock_telemetry::{Dataset, Region};
use serde::{Deserialize, Serialize};

use crate::budget::ArmedBudget;
use crate::error::SherlockError;
use crate::exec::{par_map_indexed, try_par_map_indexed};
use crate::generate::GeneratedPredicate;
use crate::label::label_partitions;
use crate::params::SherlockParams;
use crate::partition::{PartitionLabel, PartitionSpace};
use crate::predicate::Predicate;
use crate::separation::partition_separation_power;

/// Labeled partition space of one attribute, built once per ranking pass
/// and shared by every model that references the attribute (Eq. 3 scores
/// `M` models over `P` predicates each; without sharing, the same space
/// is rebuilt `M·P` times against the same dataset).
type ScoredPartition = (PartitionSpace, Vec<PartitionLabel>);

/// Build the labeled partition space Eq. 3 scores a predicate against;
/// `None` when the attribute cannot be partitioned. Shared verbatim by
/// the per-model [`CausalModel::confidence`] path and the per-ranking
/// cache so both are bit-identical.
fn scored_partition(
    dataset: &Dataset,
    attr_id: usize,
    abnormal: &Region,
    normal: &Region,
    params: &SherlockParams,
) -> Option<ScoredPartition> {
    let space = PartitionSpace::build(dataset, attr_id, params.n_partitions)?;
    let labels = label_partitions(dataset, attr_id, &space, abnormal, normal);
    Some((space, labels))
}

/// Per-attribute scoring cache for one `rank` call, indexed by attribute
/// id; `None` slots are unpartitionable (or unreferenced) attributes.
fn prepare_partitions(
    dataset: &Dataset,
    models: &[CausalModel],
    abnormal: &Region,
    normal: &Region,
    params: &SherlockParams,
    budget: Option<(&ArmedBudget, &'static str)>,
) -> Result<Vec<Option<ScoredPartition>>, SherlockError> {
    let mut attr_ids: Vec<usize> = models
        .iter()
        .flat_map(|m| &m.predicates)
        .filter_map(|p| dataset.schema().id_of(&p.attr))
        .collect();
    attr_ids.sort_unstable();
    attr_ids.dedup();
    let mut prepared: Vec<Option<ScoredPartition>> = vec![None; dataset.schema().len()];
    for attr_id in attr_ids {
        if let Some((budget, stage)) = budget {
            budget.check(stage)?;
        }
        if let Some(slot) = prepared.get_mut(attr_id) {
            *slot = scored_partition(dataset, attr_id, abnormal, normal, params);
        }
    }
    Ok(prepared)
}

/// A cause variable and its effect predicates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CausalModel {
    /// Human-readable cause label supplied by the user.
    pub cause: String,
    /// Effect predicates activated when the cause is true.
    pub predicates: Vec<Predicate>,
    /// How many diagnosed datasets contributed to this model (1 for a
    /// fresh model; grows when models are merged, §6.2).
    pub merged_from: usize,
}

impl CausalModel {
    /// Build a model from a confirmed diagnosis.
    pub fn from_feedback(cause: impl Into<String>, predicates: &[GeneratedPredicate]) -> Self {
        CausalModel {
            cause: cause.into(),
            predicates: predicates.iter().map(|g| g.predicate.clone()).collect(),
            merged_from: 1,
        }
    }

    /// Confidence of this model for the anomaly `(abnormal, normal)` in
    /// `dataset` (Eq. 3): the mean, over effect predicates, of the
    /// partition-space separation power of each predicate. Predicates on
    /// attributes the dataset lacks (or that cannot be partitioned)
    /// contribute `0`. Returns a value in `[-1, 1]`; an empty model scores
    /// `0`.
    pub fn confidence(
        &self,
        dataset: &Dataset,
        abnormal: &Region,
        normal: &Region,
        params: &SherlockParams,
    ) -> f64 {
        // Deliberate-panic hook for the crash-torture harness; a no-op for
        // every real cause and dataset, and absent (no panic, no schema
        // lookup) in builds without the `chaos` feature (see [`crate::chaos`]).
        #[cfg(any(test, feature = "chaos"))]
        crate::chaos::scorer_tripwire(&self.cause, dataset);
        if self.predicates.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .predicates
            .iter()
            .map(|pred| {
                let Some(attr_id) = dataset.schema().id_of(&pred.attr) else {
                    return 0.0;
                };
                let Some((space, labels)) =
                    scored_partition(dataset, attr_id, abnormal, normal, params)
                else {
                    return 0.0;
                };
                partition_separation_power(pred, &space, &labels, dataset, attr_id)
            })
            .sum();
        total / self.predicates.len() as f64
    }

    /// [`confidence`](Self::confidence) against a prepared per-attribute
    /// cache (see [`prepare_partitions`]): the ranking hot path. Same
    /// tripwire, same arithmetic, same results — the cache entries are
    /// built by the same [`scored_partition`] the direct path calls.
    fn confidence_prepared(&self, dataset: &Dataset, prepared: &[Option<ScoredPartition>]) -> f64 {
        #[cfg(any(test, feature = "chaos"))]
        crate::chaos::scorer_tripwire(&self.cause, dataset);
        if self.predicates.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .predicates
            .iter()
            .map(|pred| {
                let Some(attr_id) = dataset.schema().id_of(&pred.attr) else {
                    return 0.0;
                };
                let Some(Some((space, labels))) = prepared.get(attr_id) else {
                    return 0.0;
                };
                partition_separation_power(pred, space, labels, dataset, attr_id)
            })
            .sum();
        total / self.predicates.len() as f64
    }

    /// Rows of `dataset` this model flags abnormal: those satisfying the
    /// *conjunction* of all effect predicates. Evaluated columnar: one
    /// mask fill per predicate, AND-folded, instead of a per-row
    /// conjunction of `matches_row` calls.
    pub fn predicted_region(&self, dataset: &Dataset) -> Region {
        if self.predicates.is_empty() {
            return Region::new();
        }
        let mut acc = vec![true; dataset.n_rows()];
        let mut mask = Vec::new();
        for p in &self.predicates {
            let Some(attr_id) = dataset.schema().id_of(&p.attr) else {
                // A predicate over an attribute the dataset lacks matches
                // no row, so the conjunction is empty.
                return Region::new();
            };
            p.fill_mask(dataset.column(attr_id), &mut mask);
            for (slot, &m) in acc.iter_mut().zip(&mask) {
                *slot = *slot && m;
            }
        }
        Region::from_indices(acc.iter().enumerate().filter(|(_, &keep)| keep).map(|(row, _)| row))
    }

    /// Precision, recall, and F1 of the model's predicted abnormal rows
    /// against a ground-truth region (the paper's F1-measure, footnote 1).
    pub fn f1(&self, dataset: &Dataset, truth: &Region) -> Accuracy {
        Accuracy::of_regions(&self.predicted_region(dataset), truth)
    }
}

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Accuracy {
    /// `tp / (tp + fp)`.
    pub precision: f64,
    /// `tp / (tp + fn)`.
    pub recall: f64,
    /// `2pr / (p + r)`.
    pub f1: f64,
}

impl Accuracy {
    /// Score `predicted` against `truth` (both row-index regions).
    pub fn of_regions(predicted: &Region, truth: &Region) -> Accuracy {
        let tp = predicted.intersect(truth).len() as f64;
        let precision = if predicted.is_empty() { 0.0 } else { tp / predicted.len() as f64 };
        let recall = if truth.is_empty() { 0.0 } else { tp / truth.len() as f64 };
        // `> 0.0` instead of `== 0.0`: guards the 0/0 case and maps a NaN
        // precision/recall to 0.0 rather than propagating it.
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Accuracy { precision, recall, f1 }
    }
}

/// One ranked diagnosis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedCause {
    /// The model's cause label.
    pub cause: String,
    /// Its confidence for the current anomaly, in `[-1, 1]`.
    pub confidence: f64,
}

/// The system's accumulated causal models.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ModelRepository {
    models: Vec<CausalModel>,
}

impl ModelRepository {
    /// Empty repository.
    pub fn new() -> Self {
        ModelRepository::default()
    }

    /// Add a model. If a model with the same cause exists, the two are
    /// merged (§6.2); otherwise the model is stored as-is.
    pub fn add(&mut self, model: CausalModel) {
        if let Some(existing) = self.models.iter_mut().find(|m| m.cause == model.cause) {
            *existing = crate::merge::merge_models(existing, &model);
        } else {
            self.models.push(model);
        }
    }

    /// Stored models.
    pub fn models(&self) -> &[CausalModel] {
        &self.models
    }

    /// Model for a cause, if present.
    pub fn model_of(&self, cause: &str) -> Option<&CausalModel> {
        self.models.iter().find(|m| m.cause == cause)
    }

    /// Score every model against the anomaly and return all causes in
    /// decreasing confidence order (unfiltered; apply `λ` at the
    /// presentation layer so callers can inspect margins).
    ///
    /// Models are scored independently across the thread budget of
    /// `params.exec()` (Eq. 3 touches only its own model's predicates).
    /// Confidence ties break by cause name so the ranking is deterministic
    /// regardless of insertion order or thread schedule.
    pub fn rank(
        &self,
        dataset: &Dataset,
        abnormal: &Region,
        normal: &Region,
        params: &SherlockParams,
    ) -> Vec<RankedCause> {
        // The Err arm is unreachable without a budget; falling back to an
        // empty cache makes every model score via zero-contribution slots.
        let prepared = prepare_partitions(dataset, &self.models, abnormal, normal, params, None)
            .unwrap_or_default();
        let mut ranked: Vec<RankedCause> =
            par_map_indexed(params.exec, &self.models, |_, m| RankedCause {
                cause: m.cause.clone(),
                confidence: m.confidence_prepared(dataset, &prepared),
            });
        ranked.sort_by(|a, b| {
            b.confidence.total_cmp(&a.confidence).then_with(|| a.cause.cmp(&b.cause))
        });
        ranked
    }

    /// [`rank`](Self::rank) under a [`DiagnosisBudget`](crate::DiagnosisBudget):
    /// the budget is checked before each model is scored, and a panicking
    /// scorer is caught at its slot. A ranking that silently dropped the
    /// model that panicked could promote the wrong cause, so the first
    /// failure aborts the whole ranking; within budget, output is
    /// bit-identical to [`rank`](Self::rank).
    pub fn try_rank(
        &self,
        dataset: &Dataset,
        abnormal: &Region,
        normal: &Region,
        params: &SherlockParams,
        budget: &ArmedBudget,
    ) -> Result<Vec<RankedCause>, SherlockError> {
        let prepared = prepare_partitions(
            dataset,
            &self.models,
            abnormal,
            normal,
            params,
            Some((budget, "rank")),
        )?;
        let slots = try_par_map_indexed(params.exec, "rank", &self.models, |_, m| {
            budget.check("rank")?;
            Ok(RankedCause {
                cause: m.cause.clone(),
                confidence: m.confidence_prepared(dataset, &prepared),
            })
        });
        let mut ranked = Vec::with_capacity(slots.len());
        for slot in slots {
            ranked.push(slot?);
        }
        ranked.sort_by(|a, b| {
            b.confidence.total_cmp(&a.confidence).then_with(|| a.cause.cmp(&b.cause))
        });
        Ok(ranked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsherlock_telemetry::{AttributeMeta, Schema, Value};

    /// 40 rows; `hot` jumps to ~100 in rows 20..30, `cold` drops to ~0.
    fn dataset() -> (Dataset, Region, Region) {
        let schema =
            Schema::from_attrs([AttributeMeta::numeric("hot"), AttributeMeta::numeric("cold")])
                .unwrap();
        let mut d = Dataset::new(schema);
        for i in 0..40 {
            let abnormal = (20..30).contains(&i);
            let hot = if abnormal { 100.0 + (i % 3) as f64 } else { 10.0 + (i % 5) as f64 };
            let cold = if abnormal { (i % 3) as f64 } else { 50.0 + (i % 5) as f64 };
            d.push_row(i as f64, &[Value::Num(hot), Value::Num(cold)]).unwrap();
        }
        let abnormal = Region::from_range(20..30);
        let normal = abnormal.complement(40);
        (d, abnormal, normal)
    }

    fn matching_model() -> CausalModel {
        CausalModel {
            cause: "overheat".into(),
            predicates: vec![Predicate::gt("hot", 50.0), Predicate::lt("cold", 25.0)],
            merged_from: 1,
        }
    }

    fn wrong_model() -> CausalModel {
        CausalModel {
            cause: "wrong".into(),
            predicates: vec![Predicate::lt("hot", 50.0)],
            merged_from: 1,
        }
    }

    #[test]
    fn matching_model_has_high_confidence() {
        let (d, abnormal, normal) = dataset();
        let params = SherlockParams::default();
        let good = matching_model().confidence(&d, &abnormal, &normal, &params);
        let bad = wrong_model().confidence(&d, &abnormal, &normal, &params);
        assert!(good > 0.9, "good {good}");
        assert!(bad < 0.0, "bad {bad}");
    }

    #[test]
    fn confidence_of_unknown_attribute_is_zero() {
        let (d, abnormal, normal) = dataset();
        let m = CausalModel {
            cause: "x".into(),
            predicates: vec![Predicate::gt("missing", 0.0)],
            merged_from: 1,
        };
        assert_eq!(m.confidence(&d, &abnormal, &normal, &SherlockParams::default()), 0.0);
        let empty = CausalModel { cause: "e".into(), predicates: vec![], merged_from: 1 };
        assert_eq!(empty.confidence(&d, &abnormal, &normal, &SherlockParams::default()), 0.0);
    }

    #[test]
    fn predicted_region_is_conjunction() {
        let (d, abnormal, _) = dataset();
        let m = matching_model();
        let predicted = m.predicted_region(&d);
        assert_eq!(predicted, abnormal);
        let acc = m.f1(&d, &abnormal);
        assert_eq!(acc.precision, 1.0);
        assert_eq!(acc.recall, 1.0);
        assert_eq!(acc.f1, 1.0);
    }

    #[test]
    fn accuracy_handles_empty_sides() {
        let empty = Region::new();
        let truth = Region::from_range(0..5);
        let acc = Accuracy::of_regions(&empty, &truth);
        assert_eq!((acc.precision, acc.recall, acc.f1), (0.0, 0.0, 0.0));
    }

    #[test]
    fn accuracy_partial_overlap() {
        let predicted = Region::from_range(0..10);
        let truth = Region::from_range(5..10);
        let acc = Accuracy::of_regions(&predicted, &truth);
        assert_eq!(acc.precision, 0.5);
        assert_eq!(acc.recall, 1.0);
        assert!((acc.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn repository_ranks_by_confidence() {
        let (d, abnormal, normal) = dataset();
        let mut repo = ModelRepository::new();
        repo.add(wrong_model());
        repo.add(matching_model());
        let ranked = repo.rank(&d, &abnormal, &normal, &SherlockParams::default());
        assert_eq!(ranked[0].cause, "overheat");
        assert!(ranked[0].confidence > ranked[1].confidence);
    }

    #[test]
    fn rank_breaks_confidence_ties_by_cause_name() {
        let (d, abnormal, normal) = dataset();
        // Two models with identical predicates score identically; the tie
        // must break alphabetically no matter the insertion order.
        let clone_of = |cause: &str| CausalModel {
            cause: cause.into(),
            predicates: matching_model().predicates,
            merged_from: 1,
        };
        for order in [["zeta", "alpha", "mid"], ["mid", "zeta", "alpha"]] {
            let mut repo = ModelRepository::new();
            for cause in order {
                repo.add(clone_of(cause));
            }
            let ranked = repo.rank(&d, &abnormal, &normal, &SherlockParams::default());
            let names: Vec<&str> = ranked.iter().map(|r| r.cause.as_str()).collect();
            assert_eq!(names, ["alpha", "mid", "zeta"], "insertion order {order:?}");
            assert_eq!(ranked[0].confidence, ranked[2].confidence);
        }
    }

    #[test]
    fn try_rank_matches_rank_within_budget() {
        let (d, abnormal, normal) = dataset();
        let mut repo = ModelRepository::new();
        repo.add(wrong_model());
        repo.add(matching_model());
        let params = SherlockParams::default();
        let plain = repo.rank(&d, &abnormal, &normal, &params);
        let budgeted =
            repo.try_rank(&d, &abnormal, &normal, &params, &ArmedBudget::unlimited()).unwrap();
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn try_rank_surfaces_a_panicking_scorer() {
        let (d, abnormal, normal) = dataset();
        let mut repo = ModelRepository::new();
        repo.add(matching_model());
        repo.add(CausalModel {
            cause: crate::chaos::PANIC_CAUSE.into(),
            predicates: vec![Predicate::gt("hot", 0.0)],
            merged_from: 1,
        });
        let params = SherlockParams::default(); // serial in-test resolve is fine
        let result = crate::chaos::quiet_panics(|| {
            repo.try_rank(
                &d,
                &abnormal,
                &normal,
                &params.with_exec(crate::exec::ExecPolicy::Serial),
                &ArmedBudget::unlimited(),
            )
        });
        match result {
            Err(SherlockError::TaskPanicked { stage: "rank", message }) => {
                assert!(message.contains("chaos"), "{message}");
            }
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
    }

    #[test]
    fn repository_merges_same_cause() {
        let mut repo = ModelRepository::new();
        repo.add(matching_model());
        repo.add(CausalModel {
            cause: "overheat".into(),
            predicates: vec![Predicate::gt("hot", 60.0)],
            merged_from: 1,
        });
        assert_eq!(repo.models().len(), 1);
        let m = repo.model_of("overheat").unwrap();
        assert_eq!(m.merged_from, 2);
        // Only the common attribute survives the merge.
        assert_eq!(m.predicates.len(), 1);
        assert_eq!(m.predicates[0], Predicate::gt("hot", 50.0));
    }
}
