//! Deterministic scoped-thread execution layer.
//!
//! DBSherlock's hot loops are embarrassingly parallel: Algorithm 1 builds a
//! partition space and extracts a predicate *per attribute* independently
//! (§§3–4), cause ranking scores confidence *per causal model* independently
//! (§6, Eq. 3), and anomaly detection computes potential power and k-distances
//! per attribute / per point (§7). This module provides the one sanctioned way
//! to fan that work out: [`ExecPolicy`] selects a thread budget and
//! [`par_map_indexed`] maps a function over a slice on scoped threads,
//! collecting results *by index* so output order — and therefore every
//! downstream sort, threshold, and tie-break — is byte-identical to the serial
//! run. Determinism is the correctness bar, enforced by the determinism test
//! suite.
//!
//! Raw `std::thread::spawn` / `std::thread::scope` elsewhere in the workspace
//! is rejected by sherlock-lint's `raw-spawn` rule; route new parallelism
//! through here.
//!
//! Two mapping primitives share the same deterministic round-robin schedule:
//!
//! * [`par_map_indexed`] — infallible `f`; a panic in any task propagates to
//!   the caller exactly as the serial loop would surface it.
//! * [`try_par_map_indexed`] — fallible `f`; a panic in any task is caught at
//!   the slot boundary and surfaced as that slot's
//!   [`SherlockError::TaskPanicked`], so one poisoned input can never take
//!   down the rest of a batch.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::error::SherlockError;

/// How many worker threads a pipeline stage may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPolicy {
    /// Run on the calling thread only. Guaranteed allocation-free of any
    /// thread machinery; the reference against which parallel output is
    /// checked bit-for-bit.
    Serial,
    /// Use exactly `n` worker threads (clamped to at least 1).
    Threads(usize),
    /// Use one thread per available CPU, as reported by
    /// [`std::thread::available_parallelism`]; falls back to serial when the
    /// parallelism cannot be determined.
    #[default]
    Auto,
}

impl ExecPolicy {
    /// Resolve the policy to a concrete thread count (always ≥ 1).
    pub fn resolve(self) -> usize {
        match self {
            ExecPolicy::Serial => 1,
            ExecPolicy::Threads(n) => n.max(1),
            ExecPolicy::Auto => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
    }
}

impl std::fmt::Display for ExecPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecPolicy::Serial => write!(f, "serial"),
            ExecPolicy::Threads(n) => write!(f, "threads({n})"),
            ExecPolicy::Auto => write!(f, "auto"),
        }
    }
}

/// Map `f` over `items`, possibly in parallel, returning results in input
/// order.
///
/// Work is dealt round-robin: thread `t` of `T` handles indices
/// `t, t+T, t+2T, …`, each producing `(index, result)` pairs that are merged
/// and sorted by index afterwards. Because `f` receives the index and the
/// item — never any cross-item state — the output is identical under any
/// [`ExecPolicy`], which the determinism suite asserts.
///
/// A panic in `f` on a worker thread is propagated to the caller (the same
/// behavior as the serial loop).
pub fn par_map_indexed<T, U, F>(policy: ExecPolicy, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = policy.resolve().min(items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    let mut indexed: Vec<(usize, U)> = Vec::with_capacity(items.len());
    // sherlock-lint: allow(raw-spawn): this is the one sanctioned spawn site
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let f = &f;
                scope.spawn(move || {
                    items
                        .iter()
                        .enumerate()
                        .skip(tid)
                        .step_by(threads)
                        .map(|(i, item)| (i, f(i, item)))
                        .collect::<Vec<(usize, U)>>()
                })
            })
            .collect();
        for handle in handles {
            // Propagate worker panics to the caller, exactly as the serial
            // loop would surface them.
            #[allow(clippy::expect_used)]
            // sherlock-lint: allow(panic-path): propagates child panic
            indexed.extend(handle.join().expect("worker thread panicked"));
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, value)| value).collect()
}

/// Render a caught panic payload as a human-readable message.
///
/// `panic!("...")` carries a `&'static str` or (with formatting) a `String`;
/// anything else gets a placeholder rather than being dropped silently.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`par_map_indexed`] for fallible tasks, with per-slot panic isolation.
///
/// Each task runs under [`std::panic::catch_unwind`]: a panic becomes that
/// slot's [`SherlockError::TaskPanicked`] (tagged with `stage`) instead of
/// aborting the whole map. Results come back in input order under any
/// [`ExecPolicy`], exactly like [`par_map_indexed`] — the serial and
/// threaded paths share the same isolation semantics, which the determinism
/// suite asserts.
pub fn try_par_map_indexed<T, U, F>(
    policy: ExecPolicy,
    stage: &'static str,
    items: &[T],
    f: F,
) -> Vec<Result<U, SherlockError>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> Result<U, SherlockError> + Sync,
{
    // `f` only sees `&T` and shared captures; if a panic tears its internal
    // state mid-task, the whole slot is discarded as `TaskPanicked`, so no
    // broken invariant is ever observed afterwards.
    let guarded = |i: usize, item: &T| {
        catch_unwind(AssertUnwindSafe(|| f(i, item))).unwrap_or_else(|payload| {
            Err(SherlockError::TaskPanicked { stage, message: panic_message(payload.as_ref()) })
        })
    };
    let threads = policy.resolve().min(items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, item)| guarded(i, item)).collect();
    }

    let mut indexed: Vec<(usize, Result<U, SherlockError>)> = Vec::with_capacity(items.len());
    // sherlock-lint: allow(raw-spawn): second sanctioned spawn site (fallible twin)
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let guarded = &guarded;
                scope.spawn(move || {
                    items
                        .iter()
                        .enumerate()
                        .skip(tid)
                        .step_by(threads)
                        .map(|(i, item)| (i, guarded(i, item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            // Task panics are caught inside `guarded`; a join failure here
            // would mean the scope machinery itself died, which `scope`
            // already escalates.
            if let Ok(chunk) = handle.join() {
                indexed.extend(chunk);
            }
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, value)| value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_floors_at_one() {
        assert_eq!(ExecPolicy::Serial.resolve(), 1);
        assert_eq!(ExecPolicy::Threads(0).resolve(), 1);
        assert_eq!(ExecPolicy::Threads(7).resolve(), 7);
        assert!(ExecPolicy::Auto.resolve() >= 1);
    }

    #[test]
    fn default_is_auto() {
        assert_eq!(ExecPolicy::default(), ExecPolicy::Auto);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..101).collect();
        let square = |i: usize, x: &u64| (i as u64) * 1000 + x * x;
        let serial = par_map_indexed(ExecPolicy::Serial, &items, square);
        for threads in [2, 3, 4, 16, 200] {
            let parallel = par_map_indexed(ExecPolicy::Threads(threads), &items, square);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = par_map_indexed(ExecPolicy::Threads(4), &[] as &[u8], |_, x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1, 2, 3];
        let out = par_map_indexed(ExecPolicy::Threads(64), &items, |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    use crate::chaos::quiet_panics;

    #[test]
    fn try_map_matches_infallible_map_on_clean_input() {
        let items: Vec<u64> = (0..57).collect();
        let serial =
            try_par_map_indexed(ExecPolicy::Serial, "t", &items, |i, x| Ok((i as u64) * 100 + x));
        for threads in [2, 5, 64] {
            let parallel =
                try_par_map_indexed(ExecPolicy::Threads(threads), "t", &items, |i, x| {
                    Ok((i as u64) * 100 + x)
                });
            assert_eq!(serial, parallel, "threads={threads}");
        }
        let plain = par_map_indexed(ExecPolicy::Serial, &items, |i, x| (i as u64) * 100 + x);
        let unwrapped: Vec<u64> = serial.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(unwrapped, plain);
    }

    #[test]
    fn panics_are_isolated_per_slot() {
        let items: Vec<u32> = (0..20).collect();
        for policy in [ExecPolicy::Serial, ExecPolicy::Threads(4)] {
            let results = quiet_panics(|| {
                try_par_map_indexed(policy, "square", &items, |_, &x| {
                    if x % 7 == 3 {
                        panic!("poison at {x}");
                    }
                    Ok(x * x)
                })
            });
            for (i, result) in results.iter().enumerate() {
                if i % 7 == 3 {
                    match result {
                        Err(SherlockError::TaskPanicked { stage, message }) => {
                            assert_eq!(*stage, "square");
                            assert_eq!(message, &format!("poison at {i}"));
                        }
                        other => panic!("slot {i}: expected TaskPanicked, got {other:?}"),
                    }
                } else {
                    assert_eq!(result.as_ref().unwrap(), &((i * i) as u32), "{policy}");
                }
            }
        }
    }

    #[test]
    fn errors_pass_through_untouched() {
        let items = [1u8, 2, 3];
        let results = try_par_map_indexed(ExecPolicy::Threads(2), "s", &items, |_, &x| {
            if x == 2 {
                Err(SherlockError::EmptyInput("two"))
            } else {
                Ok(x)
            }
        });
        assert!(matches!(results[1], Err(SherlockError::EmptyInput("two"))));
        assert_eq!(results[0], Ok(1));
        assert_eq!(results[2], Ok(3));
    }

    #[test]
    fn non_string_panic_payloads_get_a_placeholder() {
        let results = quiet_panics(|| {
            try_par_map_indexed(
                ExecPolicy::Serial,
                "s",
                &[0u8],
                |_, _| -> Result<u8, SherlockError> { std::panic::panic_any(42_i32) },
            )
        });
        match &results[0] {
            Err(SherlockError::TaskPanicked { message, .. }) => {
                assert_eq!(message, "non-string panic payload");
            }
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(ExecPolicy::Serial.to_string(), "serial");
        assert_eq!(ExecPolicy::Threads(4).to_string(), "threads(4)");
        assert_eq!(ExecPolicy::Auto.to_string(), "auto");
    }
}
