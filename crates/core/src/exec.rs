//! Deterministic scoped-thread execution layer.
//!
//! DBSherlock's hot loops are embarrassingly parallel: Algorithm 1 builds a
//! partition space and extracts a predicate *per attribute* independently
//! (§§3–4), cause ranking scores confidence *per causal model* independently
//! (§6, Eq. 3), and anomaly detection computes potential power and k-distances
//! per attribute / per point (§7). This module provides the one sanctioned way
//! to fan that work out: [`ExecPolicy`] selects a thread budget and
//! [`par_map_indexed`] maps a function over a slice on scoped threads,
//! collecting results *by index* so output order — and therefore every
//! downstream sort, threshold, and tie-break — is byte-identical to the serial
//! run. Determinism is the correctness bar, enforced by the determinism test
//! suite.
//!
//! Raw `std::thread::spawn` / `std::thread::scope` elsewhere in the workspace
//! is rejected by sherlock-lint's `raw-spawn` rule; route new parallelism
//! through here.

/// How many worker threads a pipeline stage may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPolicy {
    /// Run on the calling thread only. Guaranteed allocation-free of any
    /// thread machinery; the reference against which parallel output is
    /// checked bit-for-bit.
    Serial,
    /// Use exactly `n` worker threads (clamped to at least 1).
    Threads(usize),
    /// Use one thread per available CPU, as reported by
    /// [`std::thread::available_parallelism`]; falls back to serial when the
    /// parallelism cannot be determined.
    #[default]
    Auto,
}

impl ExecPolicy {
    /// Resolve the policy to a concrete thread count (always ≥ 1).
    pub fn resolve(self) -> usize {
        match self {
            ExecPolicy::Serial => 1,
            ExecPolicy::Threads(n) => n.max(1),
            ExecPolicy::Auto => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
    }
}

impl std::fmt::Display for ExecPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecPolicy::Serial => write!(f, "serial"),
            ExecPolicy::Threads(n) => write!(f, "threads({n})"),
            ExecPolicy::Auto => write!(f, "auto"),
        }
    }
}

/// Map `f` over `items`, possibly in parallel, returning results in input
/// order.
///
/// Work is dealt round-robin: thread `t` of `T` handles indices
/// `t, t+T, t+2T, …`, each producing `(index, result)` pairs that are merged
/// and sorted by index afterwards. Because `f` receives the index and the
/// item — never any cross-item state — the output is identical under any
/// [`ExecPolicy`], which the determinism suite asserts.
///
/// A panic in `f` on a worker thread is propagated to the caller (the same
/// behavior as the serial loop).
pub fn par_map_indexed<T, U, F>(policy: ExecPolicy, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = policy.resolve().min(items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    let mut indexed: Vec<(usize, U)> = Vec::with_capacity(items.len());
    // sherlock-lint: allow(raw-spawn): this is the one sanctioned spawn site
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let f = &f;
                scope.spawn(move || {
                    items
                        .iter()
                        .enumerate()
                        .skip(tid)
                        .step_by(threads)
                        .map(|(i, item)| (i, f(i, item)))
                        .collect::<Vec<(usize, U)>>()
                })
            })
            .collect();
        for handle in handles {
            // Propagate worker panics to the caller, exactly as the serial
            // loop would surface them.
            #[allow(clippy::expect_used)]
            // sherlock-lint: allow(panic-path): propagates child panic
            indexed.extend(handle.join().expect("worker thread panicked"));
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, value)| value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_floors_at_one() {
        assert_eq!(ExecPolicy::Serial.resolve(), 1);
        assert_eq!(ExecPolicy::Threads(0).resolve(), 1);
        assert_eq!(ExecPolicy::Threads(7).resolve(), 7);
        assert!(ExecPolicy::Auto.resolve() >= 1);
    }

    #[test]
    fn default_is_auto() {
        assert_eq!(ExecPolicy::default(), ExecPolicy::Auto);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..101).collect();
        let square = |i: usize, x: &u64| (i as u64) * 1000 + x * x;
        let serial = par_map_indexed(ExecPolicy::Serial, &items, square);
        for threads in [2, 3, 4, 16, 200] {
            let parallel = par_map_indexed(ExecPolicy::Threads(threads), &items, square);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = par_map_indexed(ExecPolicy::Threads(4), &[] as &[u8], |_, x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1, 2, 3];
        let out = par_map_indexed(ExecPolicy::Threads(64), &items, |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ExecPolicy::Serial.to_string(), "serial");
        assert_eq!(ExecPolicy::Threads(4).to_string(), "threads(4)");
        assert_eq!(ExecPolicy::Auto.to_string(), "auto");
    }
}
