//! Partition spaces: discretized attribute domains (paper §4.1).
//!
//! For a numeric attribute, the domain `[Min, Max]` is cut into `R`
//! equi-width partitions; partition `P_j` contains values with
//! `lb(P_j) <= v < ub(P_j)` (the top partition also accepts `v = Max` so
//! the maximum isn't orphaned). For a categorical attribute there is one
//! partition per distinct value and order is irrelevant.

use dbsherlock_telemetry::{AttributeKind, Dataset, Dictionary};

/// Label of one partition (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionLabel {
    /// No tuples, or a mix of normal and abnormal tuples (numeric), or a
    /// tie (categorical).
    Empty,
    /// Exclusively/mostly normal tuples.
    Normal,
    /// Exclusively/mostly abnormal tuples.
    Abnormal,
}

/// The discretized domain of one attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionSpace {
    /// Equi-width numeric partitions.
    Numeric {
        /// Domain minimum over the whole dataset.
        min: f64,
        /// Domain maximum over the whole dataset.
        max: f64,
        /// Number of partitions `R`.
        r: usize,
    },
    /// One partition per category id.
    Categorical {
        /// Number of distinct categories.
        n: usize,
    },
}

impl PartitionSpace {
    /// Build the partition space for `attr_id` of `dataset`.
    ///
    /// Returns `None` when the attribute cannot be partitioned: an empty
    /// dataset, a numeric attribute with no finite values, or a degenerate
    /// (constant) numeric attribute — the latter mirrors the paper's
    /// limitation (ii): invariants cannot separate the regions.
    pub fn build(dataset: &Dataset, attr_id: usize, r: usize) -> Option<PartitionSpace> {
        match dataset.schema().attr(attr_id).kind {
            AttributeKind::Numeric => {
                Self::from_numeric_range(dataset.numeric_range(attr_id).ok(), r)
            }
            AttributeKind::Categorical => {
                let (_, dict) = dataset.categorical(attr_id).ok()?;
                Self::from_dictionary(dict)
            }
        }
    }

    /// Numeric space from a precomputed `(min, max)` range — e.g. the
    /// memoized `ColumnarSnapshot` cache — with the same degeneracy policy
    /// as [`build`](Self::build): `None` for a missing range, a constant
    /// attribute, or a non-finite width.
    pub fn from_numeric_range(range: Option<(f64, f64)>, r: usize) -> Option<PartitionSpace> {
        let (min, max) = range?;
        if max <= min || !(max - min).is_finite() {
            return None;
        }
        Some(PartitionSpace::Numeric { min, max, r: r.max(1) })
    }

    /// Categorical space from a column dictionary: one partition per
    /// distinct category; `None` for an empty dictionary.
    pub fn from_dictionary(dict: &Dictionary) -> Option<PartitionSpace> {
        if dict.is_empty() {
            return None;
        }
        Some(PartitionSpace::Categorical { n: dict.len() })
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        match *self {
            PartitionSpace::Numeric { r, .. } => r,
            PartitionSpace::Categorical { n } => n,
        }
    }

    /// True when there are no partitions (never for built spaces).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Width of each numeric partition.
    pub fn width(&self) -> Option<f64> {
        match *self {
            PartitionSpace::Numeric { min, max, r } => Some((max - min) / r as f64),
            PartitionSpace::Categorical { .. } => None,
        }
    }

    /// Partition index of a numeric value; `None` for NaN/∞ or categorical
    /// spaces. Values outside `[min, max]` clamp to the edge partitions
    /// (they can only appear when a predicate learned elsewhere is
    /// evaluated against this space).
    pub fn index_of_num(&self, v: f64) -> Option<usize> {
        self.numeric_binner()?.bin(v)
    }

    /// Monomorphic binner for numeric spaces: resolves the enum dispatch
    /// once so per-row loops in the columnar kernels bin values without
    /// re-matching on the space. `None` for categorical spaces.
    pub fn numeric_binner(&self) -> Option<NumericBinner> {
        match *self {
            PartitionSpace::Numeric { min, max, r } => Some(NumericBinner { min, max, r }),
            PartitionSpace::Categorical { .. } => None,
        }
    }

    /// Lower bound `lb(P_j)` of numeric partition `j`.
    pub fn lower_bound(&self, j: usize) -> Option<f64> {
        match *self {
            PartitionSpace::Numeric { min, max, r } => {
                Some(min + (max - min) / r as f64 * j as f64)
            }
            PartitionSpace::Categorical { .. } => None,
        }
    }

    /// Upper bound `ub(P_j)` of numeric partition `j`.
    pub fn upper_bound(&self, j: usize) -> Option<f64> {
        self.lower_bound(j + 1)
    }

    /// Midpoint of numeric partition `j` (used when testing whether a
    /// partition "satisfies" a predicate in the confidence computation,
    /// Eq. 3 — see `separation::partition_separation_power`).
    pub fn midpoint(&self, j: usize) -> Option<f64> {
        let lb = self.lower_bound(j)?;
        Some(lb + self.width()? / 2.0)
    }
}

/// Dispatch-free partition binning for one numeric space (see
/// [`PartitionSpace::numeric_binner`]). The floor/clamp expression is
/// shared with [`PartitionSpace::index_of_num`] and is part of the
/// pipeline's bit-identity contract.
#[derive(Debug, Clone, Copy)]
pub struct NumericBinner {
    min: f64,
    max: f64,
    r: usize,
}

impl NumericBinner {
    /// Partition index of `v`; `None` for non-finite values, clamped to
    /// the edge partitions outside `[min, max]`.
    #[inline]
    pub fn bin(&self, v: f64) -> Option<usize> {
        if !v.is_finite() {
            return None;
        }
        let idx = ((v - self.min) / (self.max - self.min) * self.r as f64).floor() as isize;
        Some(idx.clamp(0, self.r as isize - 1) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::numeric_dataset as dataset;

    #[test]
    fn numeric_space_covers_domain() {
        let d = dataset(&[0.0, 25.0, 100.0]);
        let s = PartitionSpace::build(&d, 0, 5).unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.width(), Some(20.0));
        assert_eq!(s.index_of_num(0.0), Some(0));
        assert_eq!(s.index_of_num(19.999), Some(0));
        assert_eq!(s.index_of_num(20.0), Some(1));
        // Max value lands in the top partition, not out of range.
        assert_eq!(s.index_of_num(100.0), Some(4));
        assert_eq!(s.lower_bound(2), Some(40.0));
        assert_eq!(s.upper_bound(2), Some(60.0));
        assert_eq!(s.midpoint(0), Some(10.0));
    }

    #[test]
    fn out_of_range_values_clamp() {
        let d = dataset(&[0.0, 100.0]);
        let s = PartitionSpace::build(&d, 0, 4).unwrap();
        assert_eq!(s.index_of_num(-5.0), Some(0));
        assert_eq!(s.index_of_num(500.0), Some(3));
        assert_eq!(s.index_of_num(f64::NAN), None);
    }

    #[test]
    fn constant_attribute_has_no_space() {
        let d = dataset(&[7.0, 7.0, 7.0]);
        assert!(PartitionSpace::build(&d, 0, 10).is_none());
    }

    #[test]
    fn empty_dataset_has_no_space() {
        let d = dataset(&[]);
        assert!(PartitionSpace::build(&d, 0, 10).is_none());
    }

    #[test]
    fn categorical_space_one_per_value() {
        let d = crate::fixtures::categorical_dataset(&["a", "b"]);
        let s = PartitionSpace::build(&d, 0, 99).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.width(), None);
        assert_eq!(s.index_of_num(1.0), None);
    }
}
