//! Partition filtering (paper §4.3, Figure 5).
//!
//! A non-Empty partition whose label disagrees with either of its two
//! closest non-Empty neighbours is demoted to `Empty`. All demotions are
//! applied *simultaneously* — incremental filtering would let partitions
//! cascade each other away (the paper notes the two partitions at each end
//! of the space would be lost in Fig. 5's scenarios 2 and 3).
//!
//! Consequences of the simultaneous rule as the paper states it:
//! * a partition with only one non-Empty neighbour (the outermost
//!   non-Empty partitions) is never filtered;
//! * a lone Normal/Abnormal partition is "deemed significant" and kept.

use crate::partition::PartitionLabel;

/// Apply one simultaneous filtering pass, returning the filtered labels.
pub fn filter_partitions(labels: &[PartitionLabel]) -> Vec<PartitionLabel> {
    let non_empty: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|(_, &l)| l != PartitionLabel::Empty)
        .map(|(i, _)| i)
        .collect();
    let mut out = labels.to_vec();
    // Only interior non-Empty partitions (those with a non-Empty neighbour
    // on both sides) can be filtered.
    for w in non_empty.windows(3) {
        let (left, mid, right) = (w[0], w[1], w[2]);
        if labels[mid] != labels[left] || labels[mid] != labels[right] {
            out[mid] = PartitionLabel::Empty;
        }
    }
    out
}

/// The *incremental* variant the paper rejects (§4.3): demotions are
/// applied one at a time and immediately visible to later decisions, so
/// partitions "continuously filter each other out" — in Fig. 5's
/// scenarios 2 and 3 even the partitions at the ends of the space are
/// eventually lost. Provided for the ablation study and as executable
/// documentation of why the simultaneous rule matters.
pub fn filter_partitions_incremental(labels: &[PartitionLabel]) -> Vec<PartitionLabel> {
    let mut out = labels.to_vec();
    loop {
        let non_empty: Vec<usize> = out
            .iter()
            .enumerate()
            .filter(|(_, &l)| l != PartitionLabel::Empty)
            .map(|(i, _)| i)
            .collect();
        let mut changed = false;
        for w in non_empty.windows(3) {
            let (left, mid, right) = (w[0], w[1], w[2]);
            if out[mid] != out[left] || out[mid] != out[right] {
                out[mid] = PartitionLabel::Empty;
                changed = true;
                break; // re-scan with the demotion visible
            }
        }
        if !changed {
            return out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionLabel::{Abnormal as A, Empty as E, Normal as N};

    #[test]
    fn scenario_1_agreeing_neighbours_survive() {
        // Fig. 5 scenario 1: N ... N ... N — the middle stays.
        let labels = vec![N, E, N, E, N];
        assert_eq!(filter_partitions(&labels), labels);
    }

    #[test]
    fn scenario_2_lone_dissenter_between_same_labels() {
        // A ... N ... A — the N is filtered, the ends survive.
        let labels = vec![A, E, N, E, A];
        assert_eq!(filter_partitions(&labels), vec![A, E, E, E, A]);
    }

    #[test]
    fn scenario_3_dissenter_adjacent() {
        let labels = vec![A, N, A];
        assert_eq!(filter_partitions(&labels), vec![A, E, A]);
    }

    #[test]
    fn scenario_4_boundary_between_blocks() {
        // N N A A: the inner N (left of A) disagrees with its right
        // neighbour; the inner A disagrees with its left neighbour — both
        // are interior, so both are filtered simultaneously.
        let labels = vec![N, N, A, A];
        assert_eq!(filter_partitions(&labels), vec![N, E, E, A]);
    }

    #[test]
    fn simultaneity_prevents_cascade() {
        // Alternating interior labels all disagree at once; ends survive
        // because they have only one non-Empty neighbour.
        let labels = vec![N, A, N, A, N];
        assert_eq!(filter_partitions(&labels), vec![N, E, E, E, N]);
    }

    #[test]
    fn single_partition_is_kept() {
        let labels = vec![E, A, E];
        assert_eq!(filter_partitions(&labels), labels);
        let labels = vec![N];
        assert_eq!(filter_partitions(&labels), labels);
    }

    #[test]
    fn two_partitions_are_kept() {
        // With only two non-Empty partitions neither has two neighbours.
        let labels = vec![A, E, N];
        assert_eq!(filter_partitions(&labels), labels);
    }

    #[test]
    fn all_empty_is_noop() {
        let labels = vec![E, E, E];
        assert_eq!(filter_partitions(&labels), labels);
    }

    #[test]
    fn incremental_filtering_cascades_as_the_paper_warns() {
        // Fig. 5 scenario 2: A ... N ... A. Simultaneous keeps the ends;
        // incremental erodes everything once blocks shrink to dissenting
        // singletons between larger structures.
        let labels = vec![A, N, A, N, A];
        let simultaneous = filter_partitions(&labels);
        let incremental = filter_partitions_incremental(&labels);
        let survivors = |v: &[PartitionLabel]| v.iter().filter(|&&l| l != E).count();
        assert_eq!(survivors(&simultaneous), 2, "{simultaneous:?}");
        assert!(
            survivors(&incremental) < survivors(&labels),
            "incremental must erode: {incremental:?}"
        );
        // And the cascade always reaches a fixed point (terminates) with
        // no mid-sequence dissenters left.
        let again = filter_partitions_incremental(&incremental);
        assert_eq!(again, incremental);
    }

    #[test]
    fn incremental_agrees_with_simultaneous_on_clean_input() {
        let labels = vec![N, N, E, E, A, A];
        // No interior disagreement on either side of the gap.
        assert_eq!(filter_partitions_incremental(&labels), filter_partitions(&labels));
    }

    #[test]
    fn noisy_input_erodes_to_pure_anchors() {
        // Noise: a stray A in the normal cluster and a stray N in the
        // abnormal cluster (Fig. 4's illustration). The literal §4.3 rule
        // — keep an interior partition only when BOTH non-Empty neighbours
        // share its label — erodes every partition adjacent to dissent;
        // the subsequent gap-filling step re-labels the emptied span with
        // the δ-weighted nearest anchor, which is how δ tunes the final
        // predicate boundary.
        let labels = vec![N, N, A, N, N, E, E, A, N, A, A];
        let filtered = filter_partitions(&labels);
        assert_eq!(filtered, vec![N, E, E, E, E, E, E, E, E, E, A]);
    }

    #[test]
    fn clean_blocks_keep_their_interiors() {
        // Without strays, only the two partitions at the block boundary
        // erode; block interiors survive.
        let labels = vec![N, N, N, A, A, A];
        let filtered = filter_partitions(&labels);
        assert_eq!(filtered, vec![N, N, E, E, A, A]);
    }
}
