//! Chaos hooks for torturing the diagnosis pipeline itself.
//!
//! The telemetry layer's fault injector (PR 1) proves the engine survives
//! corrupted *input*; this module proves it survives corrupted *code paths*.
//! The crash-torture harness (`table5c_crash_recovery`) and the panic-
//! isolation tests need a way to make a real pipeline stage panic on demand
//! — not a mock, the actual model scorer on the actual thread pool — so the
//! per-slot `catch_unwind` boundary in [`crate::exec::try_par_map_indexed`]
//! is exercised exactly where a latent bug would detonate in production.
//!
//! Two in-band triggers, both spelled so no real workload collides with
//! them:
//!
//! * a causal model whose cause label is [`PANIC_CAUSE`] panics when scored;
//! * any model panics when scored against a dataset carrying an attribute
//!   named [`PANIC_ATTR`] (poisons one *case* of a batch rather than one
//!   model).
//!
//! The tripwire is deliberate, documented behavior — the diagnosis-pipeline
//! analogue of `FaultPlan` — and is the only sanctioned `panic!` in this
//! crate's library code.

use dbsherlock_telemetry::Dataset;

/// Cause label that makes [`CausalModel::confidence`](crate::CausalModel)
/// panic deliberately.
pub const PANIC_CAUSE: &str = "__sherlock_chaos::panic_scorer__";

/// Attribute name that makes scoring any model against the carrying dataset
/// panic deliberately (poisons a whole case).
pub const PANIC_ATTR: &str = "__sherlock_chaos::panic_attr__";

/// The scorer's tripwire: panics iff a chaos trigger is present. Called at
/// the top of confidence scoring; a no-op for every real cause and dataset.
pub(crate) fn scorer_tripwire(cause: &str, dataset: &Dataset) {
    if cause == PANIC_CAUSE {
        // sherlock-lint: allow(panic-path): deliberate chaos tripwire (see module docs)
        panic!("chaos: deliberate panic scoring model {PANIC_CAUSE:?}");
    }
    if dataset.schema().id_of(PANIC_ATTR).is_some() {
        // sherlock-lint: allow(panic-path): deliberate chaos tripwire (see module docs)
        panic!("chaos: deliberate panic scoring against a {PANIC_ATTR:?} dataset");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsherlock_telemetry::{AttributeMeta, Schema};

    fn dataset_with(attr: &str) -> Dataset {
        Dataset::new(Schema::from_attrs([AttributeMeta::numeric(attr)]).unwrap())
    }

    #[test]
    fn silent_for_real_workloads() {
        scorer_tripwire("lock contention", &dataset_with("cpu_user"));
    }

    #[test]
    #[should_panic(expected = "chaos: deliberate panic scoring model")]
    fn cause_trigger_fires() {
        scorer_tripwire(PANIC_CAUSE, &dataset_with("cpu_user"));
    }

    #[test]
    #[should_panic(expected = "panic_attr")]
    fn attribute_trigger_fires() {
        scorer_tripwire("real cause", &dataset_with(PANIC_ATTR));
    }
}
