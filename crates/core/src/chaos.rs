//! Chaos hooks for torturing the diagnosis pipeline itself.
//!
//! The telemetry layer's fault injector (PR 1) proves the engine survives
//! corrupted *input*; this module proves it survives corrupted *code paths*.
//! The crash-torture harness (`table5c_crash_recovery`) and the panic-
//! isolation tests need a way to make a real pipeline stage panic on demand
//! — not a mock, the actual model scorer on the actual thread pool — so the
//! per-slot `catch_unwind` boundary in [`crate::exec::try_par_map_indexed`]
//! is exercised exactly where a latent bug would detonate in production.
//!
//! Two in-band triggers, both spelled so no real workload collides with
//! them:
//!
//! * a causal model whose cause label is [`PANIC_CAUSE`] panics when scored;
//! * any model panics when scored against a dataset carrying an attribute
//!   named [`PANIC_ATTR`] (poisons one *case* of a batch rather than one
//!   model).
//!
//! The tripwire only exists in builds with the `chaos` cargo feature (or in
//! this crate's own unit tests). The feature is enabled by the bench
//! harness and the workspace test suites — never by the CLI or any other
//! production consumer — so release builds carry no input-triggerable
//! `panic!` and pay no per-score schema lookup on the ranking hot path: an
//! adversarial CSV whose column happens to be named [`PANIC_ATTR`] is just
//! another attribute there. The tripwire is deliberate, documented behavior
//! — the diagnosis-pipeline analogue of `FaultPlan` — and is the only
//! sanctioned `panic!` in this crate's library code.

#[cfg(any(test, feature = "chaos"))]
use dbsherlock_telemetry::Dataset;

/// Cause label that makes [`CausalModel::confidence`](crate::CausalModel)
/// panic deliberately (in `chaos`-feature builds).
pub const PANIC_CAUSE: &str = "__sherlock_chaos::panic_scorer__";

/// Attribute name that makes scoring any model against the carrying dataset
/// panic deliberately (poisons a whole case; `chaos`-feature builds only).
pub const PANIC_ATTR: &str = "__sherlock_chaos::panic_attr__";

/// Cause label that makes the intervention engine panic inside the trial
/// slot that is about to inject it (poisons one candidate's trials; `chaos`-
/// feature builds only). The per-slot `catch_unwind` boundary must convert
/// the panic into a populated not-reproduced verdict — the bench asserts
/// zero escapes.
pub const PANIC_INTERVENTION: &str = "__sherlock_chaos::panic_intervention__";

/// The scorer's tripwire: panics iff a chaos trigger is present. Called at
/// the top of confidence scoring; a no-op for every real cause and dataset,
/// and compiled out entirely without the `chaos` feature.
#[cfg(any(test, feature = "chaos"))]
pub(crate) fn scorer_tripwire(cause: &str, dataset: &Dataset) {
    if cause == PANIC_CAUSE {
        // sherlock-lint: allow(panic-path): deliberate chaos tripwire (see module docs)
        panic!("chaos: deliberate panic scoring model {PANIC_CAUSE:?}");
    }
    if dataset.schema().id_of(PANIC_ATTR).is_some() {
        // sherlock-lint: allow(panic-path): deliberate chaos tripwire (see module docs)
        panic!("chaos: deliberate panic scoring against a {PANIC_ATTR:?} dataset");
    }
}

/// Serialises panic-hook swaps: `take_hook`/`set_hook` mutate process-global
/// state, and the test harness runs tests on parallel threads — two
/// interleaved swaps could capture each other's no-op hook as the
/// "original" and permanently silence panic output for the whole run.
#[cfg(any(test, feature = "chaos"))]
static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Run `f` with panic-hook output silenced (the default hook prints every
/// caught panic to stderr, which drowns deliberate-panic tests in noise).
///
/// This is the one sanctioned way to quiet the hook: the swap is guarded by
/// a process-wide lock held until the original hook is restored, so
/// concurrent tests can never trade hooks, and a panic escaping `f` still
/// restores the hook before resuming the unwind. The lock is not
/// reentrant — do not nest `quiet_panics` calls on one thread.
#[cfg(any(test, feature = "chaos"))]
pub fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let _guard = HOOK_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    std::panic::set_hook(hook);
    match out {
        Ok(value) => value,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsherlock_telemetry::{AttributeMeta, Schema};

    fn dataset_with(attr: &str) -> Dataset {
        Dataset::new(Schema::from_attrs([AttributeMeta::numeric(attr)]).unwrap())
    }

    #[test]
    fn silent_for_real_workloads() {
        scorer_tripwire("lock contention", &dataset_with("cpu_user"));
    }

    #[test]
    #[should_panic(expected = "chaos: deliberate panic scoring model")]
    fn cause_trigger_fires() {
        scorer_tripwire(PANIC_CAUSE, &dataset_with("cpu_user"));
    }

    #[test]
    #[should_panic(expected = "panic_attr")]
    fn attribute_trigger_fires() {
        scorer_tripwire("real cause", &dataset_with(PANIC_ATTR));
    }

    #[test]
    fn quiet_panics_returns_the_closure_value_and_round_trips() {
        assert_eq!(quiet_panics(|| 41 + 1), 42);
        // Sequential swaps under the lock must round-trip cleanly too.
        assert_eq!(quiet_panics(|| "ok"), "ok");
    }

    #[test]
    fn quiet_panics_propagates_an_escaping_panic() {
        let caught = std::panic::catch_unwind(|| quiet_panics(|| panic!("escapes")));
        let payload = caught.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"escapes"));
    }
}
