//! Crash-safe persistence for the model repository.
//!
//! A diagnosis tool earns its keep *during* incidents, which is exactly
//! when machines lose power and processes get OOM-killed. The knowledge
//! base — causal models accumulated over months of DBA feedback (§6) — must
//! survive a crash at any instant, including mid-write. This module stores
//! the [`ModelRepository`] as a single checksummed, versioned record with
//! the classic write-temp → fsync → atomic-rename discipline:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"SHLKSTO1" (format marker + version)
//! 8       8     generation, u64 LE (monotonic save counter)
//! 16      8     payload length, u64 LE
//! 24      8     FNV-1a-64 checksum over generation ‖ length ‖ payload
//! 32      n     payload: the repository as JSON
//! ```
//!
//! The checksum covers the generation and length fields, not just the
//! payload, so a bit-flip anywhere in the record is caught — a flipped
//! generation header would otherwise silently break the "recover to the
//! last good generation" invariant. The file length must equal exactly
//! `32 + payload length`; trailing junk (a duplicated record appended by a
//! confused retry loop) is corruption, not data.
//!
//! Every save rotates the previous good record to `<path>.prev`, so a torn
//! primary is never the only copy. On load, a torn or corrupt primary is
//! quarantined to `<path>.corrupt-<n>` (evidence, never silently deleted)
//! and the store falls back to the last good generation in `.prev`, or to
//! a fresh repository when nothing valid survives. A *missing* primary with
//! a `.prev` present is also a crash signature — `save` has a window
//! between rotating the old primary to `.prev` and renaming the temp file
//! into place where the primary path is briefly empty — so load falls back
//! to the backup there too, rather than silently starting fresh.
//! Pre-existing raw-JSON repositories load with a warning and are upgraded
//! on the next save.
//!
//! ## Concurrency contract
//!
//! The store is **single-writer**: at most one process saves to a given
//! path at a time (the CLI and the diagnosis engine both follow this).
//! Temp files are named uniquely per process and save (`<path>.tmp-<pid>-<n>`)
//! so even an unsanctioned concurrent writer cannot tear another writer's
//! in-flight record — the losing writer's generation may be overwritten,
//! and generation numbers may repeat, but the primary always holds one
//! complete, checksummed record. Stale temp files left by a crashed writer
//! are inert and swept on the next save.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::causal::ModelRepository;
use crate::error::SherlockError;

/// Format marker: 7 bytes of magic plus a one-byte version.
const MAGIC: &[u8; 8] = b"SHLKSTO1";
/// Bytes before the JSON payload starts.
const HEADER_LEN: usize = 32;

/// FNV-1a, 64-bit. Not cryptographic — the adversary is a power cut, not an
/// attacker — but it catches truncation, bit rot, and header flips, and it
/// needs no dependency.
fn fnv1a64(chunks: &[&[u8]]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &byte in *chunk {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Encode one repository snapshot as a v1 record.
fn encode_record(generation: u64, payload: &[u8]) -> Vec<u8> {
    let len = payload.len() as u64;
    let checksum = fnv1a64(&[&generation.to_le_bytes(), &len.to_le_bytes(), payload]);
    let mut record = Vec::with_capacity(HEADER_LEN + payload.len());
    record.extend_from_slice(MAGIC);
    record.extend_from_slice(&generation.to_le_bytes());
    record.extend_from_slice(&len.to_le_bytes());
    record.extend_from_slice(&checksum.to_le_bytes());
    record.extend_from_slice(payload);
    record
}

/// Decode a v1 record. `Err` carries the human-readable corruption reason.
fn decode_record(bytes: &[u8]) -> Result<(u64, ModelRepository), String> {
    let Some((header, payload)) = bytes.split_at_checked(HEADER_LEN) else {
        return Err(format!("truncated header: {} bytes, need {HEADER_LEN}", bytes.len()));
    };
    if header.get(0..8) != Some(MAGIC.as_slice()) {
        return Err("bad magic: not a v1 store record".to_string());
    }
    // `at + 8 <= HEADER_LEN` for every caller; a broken offset reads as 0
    // and fails the checksum below rather than panicking.
    let field = |at: usize| -> u64 {
        header
            .get(at..at + 8)
            .and_then(|s| <[u8; 8]>::try_from(s).ok())
            .map_or(0, u64::from_le_bytes)
    };
    let generation = field(8);
    let payload_len = field(16);
    let stored_checksum = field(24);
    let expected_total = (HEADER_LEN as u64).saturating_add(payload_len);
    if bytes.len() as u64 != expected_total {
        return Err(format!(
            "length mismatch: file has {} bytes, record declares {expected_total}",
            bytes.len()
        ));
    }
    let actual = fnv1a64(&[&generation.to_le_bytes(), &payload_len.to_le_bytes(), payload]);
    if actual != stored_checksum {
        return Err(format!(
            "checksum mismatch: stored {stored_checksum:#018x}, computed {actual:#018x}"
        ));
    }
    parse_repo(payload)
        .map(|repo| (generation, repo))
        .map_err(|e| format!("checksum ok but payload does not parse: {e}"))
}

/// Parse a JSON payload into a repository (the vendored `serde_json` only
/// speaks `&str`, so UTF-8 validation is part of parsing).
fn parse_repo(bytes: &[u8]) -> Result<ModelRepository, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| format!("payload is not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

/// What a [`ModelStore`] operation did besides its main job: the generation
/// involved, any degradations it worked around, and the evidence it kept.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreReport {
    /// Generation loaded or written. `0` means a fresh (or legacy,
    /// not-yet-upgraded) repository.
    pub generation: u64,
    /// Human-readable notes about anything abnormal the operation survived.
    pub warnings: Vec<String>,
    /// Corrupt files moved aside as `<path>.corrupt-<n>` for post-mortem.
    pub quarantined: Vec<PathBuf>,
    /// `true` when the primary was unusable and `.prev` supplied the data.
    pub recovered_from_backup: bool,
}

impl StoreReport {
    fn warn(&mut self, message: String) {
        self.warnings.push(message);
    }
}

/// Crash-safe home of the model repository. See the module docs for the
/// on-disk format and recovery ladder.
#[derive(Debug, Clone)]
pub struct ModelStore {
    path: PathBuf,
}

impl ModelStore {
    /// A store rooted at `path`. Nothing is touched until
    /// [`load`](Self::load) or [`save`](Self::save).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        ModelStore { path: path.into() }
    }

    /// The primary file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Where the previous good generation lives.
    pub fn backup_path(&self) -> PathBuf {
        sibling(&self.path, ".prev")
    }

    fn io_err(&self, detail: impl std::fmt::Display) -> SherlockError {
        SherlockError::Store { path: self.path.display().to_string(), detail: detail.to_string() }
    }

    /// Load the repository, recovering from whatever the last crash left
    /// behind. Infallible in the face of corruption — a torn primary is
    /// quarantined and `.prev` (or a fresh repository) takes over, with the
    /// whole story in the [`StoreReport`]. Only real I/O failures (e.g. a
    /// permission error) are `Err`.
    pub fn load(&self) -> Result<(ModelRepository, StoreReport), SherlockError> {
        let mut report = StoreReport::default();
        if !self.path.exists() {
            // save()'s crash window sits between rename(primary -> .prev)
            // and rename(tmp -> primary): the primary is briefly absent
            // while `.prev` holds the last good generation. A missing
            // primary therefore only means "fresh repository" when there is
            // no backup either.
            if let Some((generation, repo)) = self.try_backup(&mut report)? {
                report.warn(format!(
                    "{}: store file missing but backup exists (crash during \
                     save rotation?); recovered generation {generation} from backup",
                    self.path.display()
                ));
                report.generation = generation;
                report.recovered_from_backup = true;
                return Ok((repo, report));
            }
            return Ok((ModelRepository::new(), report));
        }
        let bytes = fs::read(&self.path).map_err(|e| self.io_err(e))?;
        if bytes.is_empty() {
            // A zero-length file is the classic torn-create signature. If a
            // backup exists it has the real data; otherwise this is morally
            // a missing file — fresh repository, but say so.
            if let Some((generation, repo)) = self.try_backup(&mut report)? {
                report.warn(format!(
                    "{}: zero-length store file (torn write?); recovered generation \
                     {generation} from backup",
                    self.path.display()
                ));
                report.generation = generation;
                report.recovered_from_backup = true;
                return Ok((repo, report));
            }
            report.warn(format!(
                "{}: zero-length store file; treating as a fresh repository",
                self.path.display()
            ));
            return Ok((ModelRepository::new(), report));
        }
        match decode_record(&bytes) {
            Ok((generation, repo)) => {
                report.generation = generation;
                Ok((repo, report))
            }
            Err(reason) if is_legacy_json(&bytes) => {
                // Pre-store repositories were bare pretty-printed JSON.
                let _ = reason;
                match parse_repo(&bytes) {
                    Ok(repo) => {
                        report.warn(format!(
                            "{}: legacy raw-JSON repository (no checksum); will be \
                             upgraded to the checksummed format on next save",
                            self.path.display()
                        ));
                        Ok((repo, report))
                    }
                    Err(e) => self.recover(format!("legacy JSON does not parse: {e}"), report),
                }
            }
            Err(reason) => self.recover(reason, report),
        }
    }

    /// Persist the repository as the next generation: write a fresh record
    /// to a uniquely named temp file, fsync it, rotate the current good
    /// record to `.prev`, atomically rename the temp into place, and fsync
    /// the directory. There is no instant at which the primary path holds a
    /// partial record.
    ///
    /// Single-writer (see the module docs): concurrent saves from two
    /// processes cannot tear each other's temp file, but may produce
    /// duplicate generation numbers and lose one writer's snapshot.
    pub fn save(&self, repo: &ModelRepository) -> Result<StoreReport, SherlockError> {
        let mut report = StoreReport::default();
        let payload = serde_json::to_string(repo).map_err(|e| self.io_err(e))?.into_bytes();
        let generation = self.next_generation();
        let record = encode_record(generation, &payload);

        self.sweep_stale_tmps();
        let tmp = self.tmp_path();
        let staged =
            (|| {
                let mut file =
                    OpenOptions::new().write(true).create(true).truncate(true).open(&tmp).map_err(
                        |e| self.io_err(format!("cannot create {}: {e}", tmp.display())),
                    )?;
                file.write_all(&record).map_err(|e| self.io_err(e))?;
                file.sync_all().map_err(|e| self.io_err(e))
            })();
        if let Err(e) = staged {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }

        // Rotate: a *good* primary becomes the backup; a corrupt one is
        // quarantined so it cannot clobber a good backup (and stays around
        // as evidence). A zero-length husk is simply overwritten.
        if self.path.exists() {
            let bytes = fs::read(&self.path).map_err(|e| self.io_err(e))?;
            let keep = decode_record(&bytes).is_ok()
                || (is_legacy_json(&bytes) && parse_repo(&bytes).is_ok());
            if keep {
                fs::rename(&self.path, self.backup_path()).map_err(|e| self.io_err(e))?;
            } else if !bytes.is_empty() {
                let grave = self.quarantine(&mut report)?;
                report.warn(format!(
                    "{}: corrupt record quarantined to {} before save",
                    self.path.display(),
                    grave.display()
                ));
            }
        }
        fs::rename(&tmp, &self.path).map_err(|e| self.io_err(e))?;
        self.sync_dir()?;
        report.generation = generation;
        Ok(report)
    }

    /// A temp path no other live save can collide with: pid distinguishes
    /// processes, the counter distinguishes saves within one.
    fn tmp_path(&self) -> PathBuf {
        static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        sibling(&self.path, &format!(".tmp-{}-{seq}", std::process::id()))
    }

    /// Best-effort removal of `<path>.tmp-*` debris left by a crashed
    /// writer. Under the single-writer contract no live save owns these.
    fn sweep_stale_tmps(&self) {
        let Some(file_name) = self.path.file_name().and_then(|n| n.to_str()) else {
            return;
        };
        let prefix = format!("{file_name}.tmp-");
        let dir = self.path.parent().filter(|p| !p.as_os_str().is_empty());
        let Ok(entries) = fs::read_dir(dir.unwrap_or(Path::new("."))) else {
            return;
        };
        for entry in entries.flatten() {
            if entry.file_name().to_str().is_some_and(|n| n.starts_with(&prefix)) {
                let _ = fs::remove_file(entry.path());
            }
        }
    }

    /// Decode `.prev`, quarantining it if it turns out corrupt too.
    fn try_backup(
        &self,
        report: &mut StoreReport,
    ) -> Result<Option<(u64, ModelRepository)>, SherlockError> {
        let backup = self.backup_path();
        if !backup.exists() {
            return Ok(None);
        }
        let bytes = fs::read(&backup).map_err(|e| self.io_err(e))?;
        match decode_record(&bytes) {
            Ok(found) => Ok(Some(found)),
            Err(reason) => {
                let grave = quarantine_file(&backup)
                    .map_err(|e| self.io_err(format!("cannot quarantine backup: {e}")))?;
                report.warn(format!(
                    "{}: backup is corrupt too ({reason}); quarantined to {}",
                    backup.display(),
                    grave.display()
                ));
                report.quarantined.push(grave);
                Ok(None)
            }
        }
    }

    /// The primary is corrupt: quarantine it, fall back to `.prev` or a
    /// fresh repository.
    fn recover(
        &self,
        reason: String,
        mut report: StoreReport,
    ) -> Result<(ModelRepository, StoreReport), SherlockError> {
        let grave = self.quarantine(&mut report)?;
        report.warn(format!(
            "{}: corrupt store ({reason}); quarantined to {}",
            self.path.display(),
            grave.display()
        ));
        if let Some((generation, repo)) = self.try_backup(&mut report)? {
            report.warn(format!("recovered generation {generation} from backup"));
            report.generation = generation;
            report.recovered_from_backup = true;
            return Ok((repo, report));
        }
        report.warn("no usable backup; starting a fresh repository".to_string());
        Ok((ModelRepository::new(), report))
    }

    /// Move the primary aside as `<path>.corrupt-<n>` and record it.
    fn quarantine(&self, report: &mut StoreReport) -> Result<PathBuf, SherlockError> {
        let grave = quarantine_file(&self.path)
            .map_err(|e| self.io_err(format!("cannot quarantine: {e}")))?;
        report.quarantined.push(grave.clone());
        Ok(grave)
    }

    /// One past the highest generation any readable copy carries. A corrupt
    /// or legacy store counts as generation 0, so the first checksummed
    /// save is generation 1.
    fn next_generation(&self) -> u64 {
        let gen_of = |path: &Path| -> u64 {
            fs::read(path).ok().and_then(|b| decode_record(&b).ok()).map_or(0, |(g, _)| g)
        };
        gen_of(&self.path).max(gen_of(&self.backup_path())).saturating_add(1)
    }

    /// Durably record the renames: fsync the containing directory.
    fn sync_dir(&self) -> Result<(), SherlockError> {
        let parent = self.path.parent().filter(|p| !p.as_os_str().is_empty());
        let dir = parent.unwrap_or(Path::new("."));
        // Directory fsync is advisory on some filesystems; failure to open
        // the directory is not worth failing the save over.
        if let Ok(handle) = File::open(dir) {
            handle.sync_all().map_err(|e| self.io_err(e))?;
        }
        Ok(())
    }
}

/// `path` with `suffix` appended to its file name (`models.bin` →
/// `models.bin.prev`).
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(suffix);
    PathBuf::from(name)
}

/// Move `path` to the first free `<path>.corrupt-<n>`.
fn quarantine_file(path: &Path) -> std::io::Result<PathBuf> {
    for n in 1..10_000u32 {
        let grave = sibling(path, &format!(".corrupt-{n}"));
        if !grave.exists() {
            fs::rename(path, &grave)?;
            return Ok(grave);
        }
    }
    Err(std::io::Error::other("no free quarantine slot"))
}

/// Does this look like a pre-store raw-JSON repository? (First meaningful
/// byte is `{`.)
fn is_legacy_json(bytes: &[u8]) -> bool {
    bytes.iter().find(|b| !b.is_ascii_whitespace()) == Some(&b'{')
}

/// Faults the crash-torture harness injects into store files — each one a
/// caricature of something real storage does: torn writes (truncation),
/// bit rot, and a retry loop appending a second copy of the record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// Truncate the file to its first `k` bytes (a torn write that stopped
    /// mid-record).
    TruncateAt(usize),
    /// Flip one bit of one byte in place.
    FlipBit {
        /// Byte offset to corrupt (clamped to the last byte).
        byte: usize,
        /// Bit index, 0–7.
        bit: u8,
    },
    /// Append a full copy of the file to itself (a duplicated record).
    DuplicateRecord,
    /// Remove the primary file outright — the state `save` leaves behind
    /// when it crashes between rotating the old primary to `.prev` and
    /// renaming the temp file into place.
    DeletePrimary,
}

impl StoreFault {
    /// Inflict this fault on `path` in place.
    pub fn apply(&self, path: &Path) -> std::io::Result<()> {
        let mut bytes = fs::read(path)?;
        match *self {
            StoreFault::DeletePrimary => return fs::remove_file(path),
            StoreFault::TruncateAt(k) => bytes.truncate(k),
            StoreFault::FlipBit { byte, bit } => {
                if bytes.is_empty() {
                    return Ok(());
                }
                let at = byte.min(bytes.len() - 1);
                // sherlock-lint: allow(panic-path): index clamped to len-1, emptiness checked
                bytes[at] ^= 1 << (bit % 8);
            }
            StoreFault::DuplicateRecord => {
                let copy = bytes.clone();
                bytes.extend_from_slice(&copy);
            }
        }
        // Faults are injected while nothing is mid-save, so a plain
        // truncating rewrite is fine here — this is the *injector*, not the
        // store. sherlock-lint: allow(raw-fs-write): fault injector writes
        // deliberately unsafely.
        let mut file = OpenOptions::new().write(true).truncate(true).open(path)?;
        file.write_all(&bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::CausalModel;

    fn repo_with(causes: &[&str]) -> ModelRepository {
        let mut repo = ModelRepository::new();
        for cause in causes {
            repo.add(CausalModel {
                cause: (*cause).to_string(),
                predicates: vec![Predicate::gt("cpu", 80.0)],
                merged_from: 1,
            });
        }
        repo
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sherlock-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_preserves_models_and_bumps_generations() {
        let dir = tempdir("roundtrip");
        let store = ModelStore::new(dir.join("models.bin"));
        let (fresh, report) = store.load().unwrap();
        assert!(fresh.models().is_empty());
        assert_eq!(report, StoreReport::default());

        let repo = repo_with(&["lock contention"]);
        assert_eq!(store.save(&repo).unwrap().generation, 1);
        let (loaded, report) = store.load().unwrap();
        assert_eq!(loaded.models().len(), 1);
        assert_eq!(report.generation, 1);
        assert!(report.warnings.is_empty());

        let repo2 = repo_with(&["lock contention", "io saturation"]);
        assert_eq!(store.save(&repo2).unwrap().generation, 2);
        assert!(store.backup_path().exists(), "previous generation rotated to .prev");
        let (loaded, report) = store.load().unwrap();
        assert_eq!(loaded.models().len(), 2);
        assert_eq!(report.generation, 2);
    }

    #[test]
    fn truncation_at_every_byte_recovers_the_previous_generation() {
        let dir = tempdir("truncate");
        let store = ModelStore::new(dir.join("models.bin"));
        store.save(&repo_with(&["gen one"])).unwrap();
        store.save(&repo_with(&["gen one", "gen two"])).unwrap();
        let full = fs::read(store.path()).unwrap();

        for k in 0..full.len() {
            fs::write(store.path(), &full[..k]).unwrap();
            let (repo, report) = store.load().unwrap();
            if k == 0 {
                // Zero-length: recovered straight from backup, nothing to
                // quarantine.
                assert!(report.recovered_from_backup, "k={k}");
            } else {
                assert!(report.recovered_from_backup, "k={k}: {:?}", report.warnings);
                assert_eq!(report.quarantined.len(), 1, "k={k}");
                fs::remove_file(&report.quarantined[0]).unwrap();
            }
            assert_eq!(report.generation, 1, "k={k}");
            assert_eq!(repo.models().len(), 1, "k={k}");
            // Put the backup scheme back for the next truncation point.
            fs::write(store.path(), &full).unwrap();
        }
    }

    #[test]
    fn bit_flips_anywhere_are_detected_and_quarantined() {
        let dir = tempdir("bitflip");
        let store = ModelStore::new(dir.join("models.bin"));
        store.save(&repo_with(&["solid"])).unwrap();
        store.save(&repo_with(&["solid", "new"])).unwrap();
        let full = fs::read(store.path()).unwrap();

        for byte in [0, 9, 17, 25, HEADER_LEN, full.len() - 1] {
            StoreFault::FlipBit { byte, bit: 3 }.apply(store.path()).unwrap();
            let (repo, report) = store.load().unwrap();
            assert!(report.recovered_from_backup, "byte {byte}: {:?}", report.warnings);
            assert_eq!(repo.models().len(), 1, "byte {byte}");
            for grave in &report.quarantined {
                fs::remove_file(grave).unwrap();
            }
            fs::write(store.path(), &full).unwrap();
        }
    }

    #[test]
    fn duplicate_record_is_length_checked_corruption() {
        let dir = tempdir("duplicate");
        let store = ModelStore::new(dir.join("models.bin"));
        store.save(&repo_with(&["only"])).unwrap();
        StoreFault::DuplicateRecord.apply(store.path()).unwrap();
        let (repo, report) = store.load().unwrap();
        // No backup yet (single save): falls back to fresh, with evidence.
        assert!(repo.models().is_empty());
        assert!(!report.recovered_from_backup);
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.warnings.iter().any(|w| w.contains("length mismatch")), "{report:?}");
    }

    #[test]
    fn missing_primary_with_backup_recovers_the_backup_generation() {
        // Simulate save()'s crash window exactly: after the old primary is
        // rotated to .prev but before the temp file is renamed into place,
        // the primary path does not exist and .prev holds the last good
        // generation. The rename below *is* that intermediate state.
        let dir = tempdir("crashwindow");
        let store = ModelStore::new(dir.join("models.bin"));
        store.save(&repo_with(&["gen one"])).unwrap();
        store.save(&repo_with(&["gen one", "gen two"])).unwrap();
        fs::rename(store.path(), store.backup_path()).unwrap();

        let (repo, report) = store.load().unwrap();
        assert!(report.recovered_from_backup, "{report:?}");
        assert_eq!(report.generation, 2);
        assert_eq!(repo.models().len(), 2);
        assert!(report.warnings.iter().any(|w| w.contains("missing")), "{report:?}");
        assert!(report.quarantined.is_empty(), "nothing corrupt to quarantine");

        // The next save continues the generation sequence instead of
        // restarting, so the recovered backup is never rotated over by a
        // fresh generation-1 record.
        assert_eq!(store.save(&repo).unwrap().generation, 3);
        let (again, report) = store.load().unwrap();
        assert_eq!(again.models().len(), 2);
        assert!(!report.recovered_from_backup);
    }

    #[test]
    fn primary_deleted_between_saves_recovers_the_rotated_backup() {
        // The REVIEW scenario: delete the primary between two saves and
        // make sure the load does not silently hand back a fresh repository
        // while a good .prev sits on disk.
        let dir = tempdir("delprimary");
        let store = ModelStore::new(dir.join("models.bin"));
        store.save(&repo_with(&["gen one"])).unwrap();
        store.save(&repo_with(&["gen one", "gen two"])).unwrap();
        StoreFault::DeletePrimary.apply(store.path()).unwrap();

        // .prev holds generation 1 (rotated by the second save).
        let (repo, report) = store.load().unwrap();
        assert!(report.recovered_from_backup, "{report:?}");
        assert_eq!(report.generation, 1);
        assert_eq!(repo.models().len(), 1);
    }

    #[test]
    fn zero_length_with_no_backup_is_fresh_with_warning() {
        let dir = tempdir("zerolen");
        let store = ModelStore::new(dir.join("models.bin"));
        fs::write(store.path(), b"").unwrap();
        let (repo, report) = store.load().unwrap();
        assert!(repo.models().is_empty());
        assert!(report.warnings.iter().any(|w| w.contains("zero-length")), "{report:?}");
        assert!(report.quarantined.is_empty(), "nothing worth keeping in an empty file");
    }

    #[test]
    fn legacy_raw_json_loads_with_warning_and_upgrades_on_save() {
        let dir = tempdir("legacy");
        let store = ModelStore::new(dir.join("models.json"));
        let legacy = serde_json::to_string_pretty(&repo_with(&["old faithful"])).unwrap();
        fs::write(store.path(), legacy).unwrap();
        let (repo, report) = store.load().unwrap();
        assert_eq!(repo.models().len(), 1);
        assert_eq!(report.generation, 0);
        assert!(report.warnings.iter().any(|w| w.contains("legacy")), "{report:?}");

        store.save(&repo).unwrap();
        let (again, report) = store.load().unwrap();
        assert_eq!(again.models().len(), 1);
        assert_eq!(report.generation, 1);
        assert!(report.warnings.is_empty(), "upgraded store loads clean: {report:?}");
        assert!(store.backup_path().exists(), "legacy file preserved as backup");
    }

    #[test]
    fn save_over_corrupt_primary_quarantines_without_touching_good_backup() {
        let dir = tempdir("saveover");
        let store = ModelStore::new(dir.join("models.bin"));
        store.save(&repo_with(&["first"])).unwrap();
        store.save(&repo_with(&["first", "second"])).unwrap();
        // Corrupt the primary; .prev still holds generation 1.
        StoreFault::TruncateAt(10).apply(store.path()).unwrap();
        let report = store.save(&repo_with(&["first", "second", "third"])).unwrap();
        assert_eq!(report.quarantined.len(), 1, "{report:?}");
        // The good backup (generation 1) must not have been clobbered by
        // the corrupt husk.
        let backup = fs::read(store.backup_path()).unwrap();
        let (generation, repo) = decode_record(&backup).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(repo.models().len(), 1);
        // And the new save is intact.
        let (now, load_report) = store.load().unwrap();
        assert_eq!(now.models().len(), 3);
        assert!(!load_report.recovered_from_backup);
    }

    #[test]
    fn generations_survive_corruption_monotonically() {
        let dir = tempdir("monotonic");
        let store = ModelStore::new(dir.join("models.bin"));
        store.save(&repo_with(&["a"])).unwrap(); // gen 1
        store.save(&repo_with(&["a", "b"])).unwrap(); // gen 2
        StoreFault::FlipBit { byte: 40, bit: 1 }.apply(store.path()).unwrap();
        // Primary unreadable -> next generation still counts past the
        // backup's generation 1.
        let report = store.save(&repo_with(&["c"])).unwrap();
        assert_eq!(report.generation, 2, "max(readable generations) + 1");
    }

    #[test]
    fn checksum_covers_the_generation_field() {
        // Flip a bit inside the generation header of a valid record: the
        // record must decode as corrupt, not as a different generation.
        let payload = serde_json::to_string(&repo_with(&["x"])).unwrap().into_bytes();
        let mut record = encode_record(7, &payload);
        record[9] ^= 0x10;
        let err = decode_record(&record).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
    }
}
