//! Domain knowledge and secondary-symptom pruning (paper §5).
//!
//! A rule `Attr_i → Attr_j` says: when predicates on both attributes are
//! extracted, the one on `Attr_j` is *likely* a secondary symptom of the
//! one on `Attr_i`. Because domain knowledge can itself be imperfect, the
//! rule is only honoured when the data *confirms* the dependence: the two
//! attributes are discretized into `γ` bins, a joint histogram estimates
//! their joint distribution, and the independence factor
//! `κ = MI² / (H_i · H_j)` is compared against `κ_t`. If `κ >= κ_t`
//! (dependent) the rule fires and the effect predicate is pruned; if
//! `κ < κ_t` (the attributes pass the independence test) both predicates
//! stay.

use dbsherlock_telemetry::{stats, AttributeKind, Dataset};
use serde::{Deserialize, Serialize};

use crate::error::SherlockError;
use crate::generate::GeneratedPredicate;
use crate::params::SherlockParams;

/// One piece of domain knowledge: `cause → effect`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// Attribute whose predicate is the likely primary signal.
    pub cause: String,
    /// Attribute whose predicate is the likely secondary symptom.
    pub effect: String,
}

impl Rule {
    /// Construct a rule.
    pub fn new(cause: impl Into<String>, effect: impl Into<String>) -> Self {
        Rule { cause: cause.into(), effect: effect.into() }
    }
}

/// A consistent set of rules.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DomainKnowledge {
    rules: Vec<Rule>,
}

impl DomainKnowledge {
    /// Empty knowledge base (DBSherlock works fine without one, §8.6).
    pub fn none() -> Self {
        DomainKnowledge::default()
    }

    /// Build from rules, rejecting the forbidden symmetric pair
    /// `A → B` together with `B → A` (paper §5, condition ii).
    pub fn new(rules: impl IntoIterator<Item = Rule>) -> Result<Self, SherlockError> {
        let mut kb = DomainKnowledge::default();
        for rule in rules {
            kb.add(rule)?;
        }
        Ok(kb)
    }

    /// Add one rule; errors when its inverse is already present.
    pub fn add(&mut self, rule: Rule) -> Result<(), SherlockError> {
        if self.rules.iter().any(|r| r.cause == rule.effect && r.effect == rule.cause) {
            return Err(SherlockError::ConflictingRules {
                detail: format!(
                    "{} → {} and {} → {} cannot coexist",
                    rule.cause, rule.effect, rule.effect, rule.cause
                ),
            });
        }
        if !self.rules.contains(&rule) {
            self.rules.push(rule);
        }
        Ok(())
    }

    /// The rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The paper's four default rules for MySQL on Linux (§5), phrased in
    /// our metric names: the DBMS/OS CPU subset relationship plus three
    /// complement relationships.
    pub fn mysql_linux() -> Self {
        // The fixed list above has no symmetric pair, so construction
        // cannot fail; an empty knowledge base is the harmless fallback.
        DomainKnowledge::new([
            Rule::new("dbms_cpu_usage", "os_cpu_usage"),
            Rule::new("os_pages_allocated", "os_pages_free"),
            Rule::new("os_swap_used_mb", "os_swap_free_mb"),
            Rule::new("os_cpu_usage", "os_cpu_idle"),
        ])
        .unwrap_or_default()
    }

    /// Prune secondary symptoms from `predicates`, returning the survivors
    /// (order preserved). For each rule whose cause and effect both have
    /// predicates, the effect predicate is removed iff the dependence test
    /// over `dataset` confirms the rule (`κ >= κ_t`).
    pub fn prune(
        &self,
        dataset: &Dataset,
        predicates: Vec<GeneratedPredicate>,
        params: &SherlockParams,
    ) -> Vec<GeneratedPredicate> {
        let mut pruned = vec![false; predicates.len()];
        for rule in &self.rules {
            let cause_present = predicates
                .iter()
                .enumerate()
                .any(|(i, p)| !pruned[i] && p.predicate.attr == rule.cause);
            if !cause_present {
                continue;
            }
            let Some(effect_idx) = predicates.iter().position(|p| p.predicate.attr == rule.effect)
            else {
                continue;
            };
            if pruned[effect_idx] {
                continue;
            }
            if let Some(kappa) = independence_factor(dataset, &rule.cause, &rule.effect, params) {
                if kappa >= params.kappa_t {
                    pruned[effect_idx] = true;
                }
            }
        }
        predicates
            .into_iter()
            .zip(pruned)
            .filter(|(_, was_pruned)| !was_pruned)
            .map(|(p, _)| p)
            .collect()
    }
}

/// The independence factor `κ(Attr_a, Attr_b)` over the full dataset,
/// or `None` if either attribute is missing or unpartitionable.
pub fn independence_factor(
    dataset: &Dataset,
    attr_a: &str,
    attr_b: &str,
    params: &SherlockParams,
) -> Option<f64> {
    let a = discretize(dataset, attr_a, params.gamma)?;
    let b = discretize(dataset, attr_b, params.gamma)?;
    if a.codes.len() != b.codes.len() || a.codes.is_empty() {
        return None;
    }
    let joint = stats::joint_histogram(&a.codes, &b.codes, a.bins, b.bins);
    Some(stats::independence_factor(&joint))
}

struct Discretized {
    codes: Vec<usize>,
    bins: usize,
}

/// Discretize an attribute: `γ` equi-width bins for numeric, category ids
/// for categorical (§5).
fn discretize(dataset: &Dataset, attr: &str, gamma: usize) -> Option<Discretized> {
    let attr_id = dataset.schema().id_of(attr)?;
    match dataset.schema().attr(attr_id).kind {
        AttributeKind::Numeric => {
            let values = dataset.numeric(attr_id)?;
            let (min, max) = dataset.numeric_range(attr_id).ok()?;
            let bins = gamma.max(1);
            let codes = values
                .iter()
                .map(|&v| if v.is_finite() { stats::bin_index(v, min, max, bins) } else { 0 })
                .collect();
            Some(Discretized { codes, bins })
        }
        AttributeKind::Categorical => {
            let (ids, dict) = dataset.categorical(attr_id).ok()?;
            if dict.is_empty() {
                return None;
            }
            Some(Discretized { codes: ids.iter().map(|&i| i as usize).collect(), bins: dict.len() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use dbsherlock_telemetry::{AttributeMeta, Schema, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn generated(attr: &str) -> GeneratedPredicate {
        GeneratedPredicate {
            predicate: Predicate::gt(attr, 1.0),
            separation_power: 1.0,
            normalized_diff: 1.0,
        }
    }

    /// `dep` tracks `base` exactly; `indep` is independent noise.
    fn dataset() -> Dataset {
        let schema = Schema::from_attrs([
            AttributeMeta::numeric("base"),
            AttributeMeta::numeric("dep"),
            AttributeMeta::numeric("indep"),
        ])
        .unwrap();
        let mut d = Dataset::new(schema);
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..400 {
            let base: f64 = rng.random::<f64>() * 100.0;
            let dep = base * 2.0 + 5.0;
            let indep: f64 = rng.random::<f64>() * 100.0;
            d.push_row(i as f64, &[Value::Num(base), Value::Num(dep), Value::Num(indep)]).unwrap();
        }
        d
    }

    #[test]
    fn kappa_high_for_dependent_low_for_independent() {
        let d = dataset();
        let params = SherlockParams::default();
        let dep = independence_factor(&d, "base", "dep", &params).unwrap();
        let indep = independence_factor(&d, "base", "indep", &params).unwrap();
        assert!(dep > 0.5, "dependent kappa {dep}");
        assert!(indep < 0.15, "independent kappa {indep}");
        assert!(independence_factor(&d, "base", "missing", &params).is_none());
    }

    #[test]
    fn prune_removes_confirmed_secondary_symptom() {
        let d = dataset();
        let kb = DomainKnowledge::new([Rule::new("base", "dep")]).unwrap();
        let survivors =
            kb.prune(&d, vec![generated("base"), generated("dep")], &SherlockParams::default());
        let names: Vec<&str> = survivors.iter().map(|p| p.predicate.attr.as_str()).collect();
        assert_eq!(names, vec!["base"]);
    }

    #[test]
    fn prune_keeps_effect_when_independent() {
        let d = dataset();
        let kb = DomainKnowledge::new([Rule::new("base", "indep")]).unwrap();
        let survivors =
            kb.prune(&d, vec![generated("base"), generated("indep")], &SherlockParams::default());
        assert_eq!(survivors.len(), 2, "independent attributes must both survive");
    }

    #[test]
    fn prune_requires_cause_predicate() {
        let d = dataset();
        let kb = DomainKnowledge::new([Rule::new("base", "dep")]).unwrap();
        // Only the effect predicate present: nothing to prune against.
        let survivors = kb.prune(&d, vec![generated("dep")], &SherlockParams::default());
        assert_eq!(survivors.len(), 1);
    }

    #[test]
    fn symmetric_rules_rejected() {
        let mut kb = DomainKnowledge::none();
        kb.add(Rule::new("a", "b")).unwrap();
        assert!(kb.add(Rule::new("b", "a")).is_err());
        // Duplicates are idempotent.
        kb.add(Rule::new("a", "b")).unwrap();
        assert_eq!(kb.rules().len(), 1);
    }

    #[test]
    fn default_rules_exist() {
        let kb = DomainKnowledge::mysql_linux();
        assert_eq!(kb.rules().len(), 4);
        assert!(kb.rules().iter().any(|r| r.cause == "dbms_cpu_usage"));
    }

    #[test]
    fn pruned_cause_does_not_cascade() {
        // a -> b and b -> c: if b is pruned by a's rule, b no longer counts
        // as a live cause for c.
        let schema = Schema::from_attrs([
            AttributeMeta::numeric("a"),
            AttributeMeta::numeric("b"),
            AttributeMeta::numeric("c"),
        ])
        .unwrap();
        let mut d = Dataset::new(schema);
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..400 {
            let a: f64 = rng.random::<f64>() * 10.0;
            // b depends on a; c independent of everything.
            let c: f64 = rng.random::<f64>() * 10.0;
            d.push_row(i as f64, &[Value::Num(a), Value::Num(a + 1.0), Value::Num(c)]).unwrap();
        }
        let kb = DomainKnowledge::new([Rule::new("a", "b"), Rule::new("b", "c")]).unwrap();
        let survivors = kb.prune(
            &d,
            vec![generated("a"), generated("b"), generated("c")],
            &SherlockParams::default(),
        );
        let names: Vec<&str> = survivors.iter().map(|p| p.predicate.attr.as_str()).collect();
        // b pruned (dependent on a); c survives: its would-be cause b is
        // already gone, and c is independent of b anyway.
        assert_eq!(names, vec!["a", "c"]);
    }
}
