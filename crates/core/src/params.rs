//! Tunable parameters of the DBSherlock algorithm.

use serde::{Deserialize, Serialize};

use crate::budget::DiagnosisBudget;
use crate::error::SherlockError;
use crate::exec::ExecPolicy;

/// All knobs of the predicate-generation and diagnosis pipeline, with the
/// paper's defaults.
///
/// Fields are private: read them through the accessor methods
/// ([`theta`](SherlockParams::theta), [`delta`](SherlockParams::delta), …)
/// and set them through [`SherlockParams::builder`] (validating) or the
/// infallible `with_*` conveniences. `Default` still yields the paper's
/// configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SherlockParams {
    /// Number of equi-width partitions `R` for numeric attributes (§4.1).
    ///
    /// The paper's prose default is 1000; its own parameter study
    /// (Appendix D) runs the evaluation at `R = 250`, which it found to
    /// have indistinguishable confidence at a quarter of the cost, so that
    /// is our default too.
    pub(crate) n_partitions: usize,
    /// Normalized difference threshold `θ` (§4.5): a numeric predicate is
    /// kept only when `|µ_A − µ_N| > θ` on the min–max-normalized attribute.
    /// `0.2` for single causal models (§8.3); `0.05` when models will be
    /// merged (§8.5).
    pub(crate) theta: f64,
    /// Anomaly distance multiplier `δ` (§4.4): distances to Abnormal
    /// partitions are multiplied by `δ` while filling gaps, so `δ > 1`
    /// yields more specific predicates.
    pub(crate) delta: f64,
    /// Minimum tuple-level separation power (Eq. 1) a candidate predicate
    /// must reach on the training data to be emitted. §3 states
    /// DBSherlock's goal as "filter\[ing\] out individual attributes with low
    /// separation power" without fixing a threshold; we make the filter
    /// explicit. Attributes whose normal/abnormal clusters overlap
    /// materially (SP well below 1) produce predicates that do not
    /// transfer across anomaly instances.
    pub(crate) min_separation_power: f64,
    /// Bins per attribute (`γ`) for the joint histogram of the
    /// domain-knowledge independence test (§5).
    pub(crate) gamma: usize,
    /// Independence-factor threshold `κ_t` (§5): attributes with
    /// `κ >= κ_t` are considered dependent, validating the rule.
    pub(crate) kappa_t: f64,
    /// Minimum confidence `λ` for a causal model to be reported (§6).
    pub(crate) lambda: f64,
    /// Sliding-window size `τ` for the potential-power median filter (§7).
    pub(crate) tau: usize,
    /// Potential-power threshold `PP_t` for attribute selection (§7).
    pub(crate) pp_t: f64,
    /// DBSCAN `minPts` (§7 fixes it to 3).
    pub(crate) min_pts: usize,
    /// Maximum cluster size, as a fraction of all points, for a cluster to
    /// be reported as anomalous (§7 uses 20%).
    pub(crate) max_anomaly_fraction: f64,
    /// Thread budget for the parallel pipeline stages. Not an algorithm
    /// knob: any policy yields bit-identical output (see [`crate::exec`]),
    /// so it is excluded from serialization and defaults to
    /// [`ExecPolicy::Auto`] on deserialize.
    #[serde(skip)]
    pub(crate) exec: ExecPolicy,
    /// Resource budget for a diagnosis: wall-clock deadline, size limits,
    /// cooperative cancellation (see [`DiagnosisBudget`]). Like `exec`, an
    /// operational knob rather than an algorithm knob: whatever completes
    /// within budget is bit-identical to the unbudgeted run, so it is
    /// excluded from serialization and defaults to unlimited.
    #[serde(skip)]
    pub(crate) budget: DiagnosisBudget,
}

impl Default for SherlockParams {
    fn default() -> Self {
        SherlockParams {
            n_partitions: 250,
            theta: 0.2,
            delta: 10.0,
            min_separation_power: 0.85,
            gamma: 10,
            kappa_t: 0.15,
            lambda: 0.2,
            tau: 20,
            pp_t: 0.3,
            min_pts: 3,
            max_anomaly_fraction: 0.2,
            exec: ExecPolicy::Auto,
            budget: DiagnosisBudget::unlimited(),
        }
    }
}

impl SherlockParams {
    /// The paper's configuration for building causal models that will be
    /// merged (§8.5): a lower θ (and a laxer separation-power floor) keeps
    /// more predicates per model so merging has material to work with —
    /// permissive generation + the strict attribute intersection of §6.2
    /// is what filters the unstable predicates in this regime.
    pub fn for_merging() -> Self {
        SherlockParams { theta: 0.05, min_separation_power: 0.5, ..SherlockParams::default() }
    }

    /// Start a validating builder seeded with the paper's defaults.
    pub fn builder() -> SherlockParamsBuilder {
        SherlockParamsBuilder { params: SherlockParams::default() }
    }

    /// Number of equi-width partitions `R` (§4.1).
    pub fn n_partitions(&self) -> usize {
        self.n_partitions
    }

    /// Normalized difference threshold `θ` (§4.5).
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Anomaly distance multiplier `δ` (§4.4).
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Minimum tuple-level separation power (Eq. 1) for emitted predicates.
    pub fn min_separation_power(&self) -> f64 {
        self.min_separation_power
    }

    /// Bins per attribute `γ` for the independence test (§5).
    pub fn gamma(&self) -> usize {
        self.gamma
    }

    /// Independence-factor threshold `κ_t` (§5).
    pub fn kappa_t(&self) -> f64 {
        self.kappa_t
    }

    /// Minimum reported model confidence `λ` (§6).
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Sliding-window size `τ` for the potential-power filter (§7).
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// Potential-power threshold `PP_t` (§7).
    pub fn pp_t(&self) -> f64 {
        self.pp_t
    }

    /// DBSCAN `minPts` (§7).
    pub fn min_pts(&self) -> usize {
        self.min_pts
    }

    /// Maximum anomalous-cluster fraction (§7).
    pub fn max_anomaly_fraction(&self) -> f64 {
        self.max_anomaly_fraction
    }

    /// Thread budget for the parallel pipeline stages.
    pub fn exec(&self) -> ExecPolicy {
        self.exec
    }

    /// Resource budget for a diagnosis.
    pub fn budget(&self) -> &DiagnosisBudget {
        &self.budget
    }

    /// Builder-style override of `θ`.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Builder-style override of `R`.
    pub fn with_partitions(mut self, r: usize) -> Self {
        self.n_partitions = r.max(1);
        self
    }

    /// Builder-style override of `δ`.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Builder-style override of the separation-power floor.
    pub fn with_min_separation_power(mut self, floor: f64) -> Self {
        self.min_separation_power = floor;
        self
    }

    /// Builder-style override of the execution policy.
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Builder-style override of the diagnosis budget.
    pub fn with_budget(mut self, budget: DiagnosisBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// Validating builder for [`SherlockParams`].
///
/// Every setter records the value as given; [`build`](Self::build) checks the
/// whole configuration at once and reports the first violation as
/// [`SherlockError::InvalidParam`].
///
/// ```
/// use dbsherlock_core::{ExecPolicy, SherlockParams};
/// let params = SherlockParams::builder()
///     .theta(0.05)
///     .min_separation_power(0.5)
///     .exec(ExecPolicy::Threads(4))
///     .build()
///     .unwrap();
/// assert_eq!(params.theta(), 0.05);
/// assert!(SherlockParams::builder().theta(-1.0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct SherlockParamsBuilder {
    params: SherlockParams,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, value: $ty) -> Self {
                self.params.$name = value;
                self
            }
        )*
    };
}

impl SherlockParamsBuilder {
    builder_setters! {
        /// Number of equi-width partitions `R` (§4.1). Must be ≥ 1.
        n_partitions: usize,
        /// Normalized difference threshold `θ` (§4.5). Must be finite in `[0, 1]`.
        theta: f64,
        /// Anomaly distance multiplier `δ` (§4.4). Must be finite and > 0.
        delta: f64,
        /// Separation-power floor (Eq. 1). Must be finite in `[0, 1]`.
        min_separation_power: f64,
        /// Bins per attribute `γ` (§5). Must be ≥ 2.
        gamma: usize,
        /// Independence-factor threshold `κ_t` (§5). Must be finite and ≥ 0.
        kappa_t: f64,
        /// Minimum reported confidence `λ` (§6). Must be finite in `[0, 1]`.
        lambda: f64,
        /// Potential-power window `τ` (§7). Must be ≥ 1.
        tau: usize,
        /// Potential-power threshold `PP_t` (§7). Must be finite and ≥ 0.
        pp_t: f64,
        /// DBSCAN `minPts` (§7). Must be ≥ 1.
        min_pts: usize,
        /// Maximum anomalous-cluster fraction (§7). Must be finite in `(0, 1]`.
        max_anomaly_fraction: f64,
        /// Thread budget for the parallel pipeline stages.
        exec: ExecPolicy,
        /// Resource budget: deadline, size limits, cancellation.
        budget: DiagnosisBudget,
    }

    /// Validate the configuration and produce the params.
    pub fn build(self) -> Result<SherlockParams, SherlockError> {
        let p = &self.params;
        let invalid = |name: &'static str, value: String, reason: &'static str| {
            Err(SherlockError::InvalidParam { name, value, reason })
        };
        if p.n_partitions == 0 {
            return invalid("n_partitions", p.n_partitions.to_string(), "must be at least 1");
        }
        if !p.theta.is_finite() || !(0.0..=1.0).contains(&p.theta) {
            return invalid("theta", p.theta.to_string(), "must be finite in [0, 1]");
        }
        if !p.delta.is_finite() || p.delta <= 0.0 {
            return invalid("delta", p.delta.to_string(), "must be finite and positive");
        }
        if !p.min_separation_power.is_finite() || !(0.0..=1.0).contains(&p.min_separation_power) {
            return invalid(
                "min_separation_power",
                p.min_separation_power.to_string(),
                "must be finite in [0, 1]",
            );
        }
        if p.gamma < 2 {
            return invalid("gamma", p.gamma.to_string(), "needs at least 2 histogram bins");
        }
        if !p.kappa_t.is_finite() || p.kappa_t < 0.0 {
            return invalid("kappa_t", p.kappa_t.to_string(), "must be finite and non-negative");
        }
        if !p.lambda.is_finite() || !(0.0..=1.0).contains(&p.lambda) {
            return invalid("lambda", p.lambda.to_string(), "must be finite in [0, 1]");
        }
        if p.tau == 0 {
            return invalid("tau", p.tau.to_string(), "window must cover at least 1 sample");
        }
        if !p.pp_t.is_finite() || p.pp_t < 0.0 {
            return invalid("pp_t", p.pp_t.to_string(), "must be finite and non-negative");
        }
        if p.min_pts == 0 {
            return invalid("min_pts", p.min_pts.to_string(), "DBSCAN needs minPts >= 1");
        }
        if !p.max_anomaly_fraction.is_finite()
            || p.max_anomaly_fraction <= 0.0
            || p.max_anomaly_fraction > 1.0
        {
            return invalid(
                "max_anomaly_fraction",
                p.max_anomaly_fraction.to_string(),
                "must be finite in (0, 1]",
            );
        }
        Ok(self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = SherlockParams::default();
        assert_eq!(p.n_partitions(), 250);
        assert_eq!(p.theta(), 0.2);
        assert_eq!(p.delta(), 10.0);
        assert_eq!(p.kappa_t(), 0.15);
        assert_eq!(p.lambda(), 0.2);
        assert_eq!(p.tau(), 20);
        assert_eq!(p.pp_t(), 0.3);
        assert_eq!(p.min_pts(), 3);
        assert_eq!(p.exec(), ExecPolicy::Auto);
    }

    #[test]
    fn merging_profile_lowers_theta() {
        let p = SherlockParams::for_merging();
        assert_eq!(p.theta(), 0.05);
        assert_eq!(p.n_partitions(), 250);
    }

    #[test]
    fn builders_override() {
        let p = SherlockParams::default().with_theta(0.4).with_partitions(0).with_delta(0.1);
        assert_eq!(p.theta(), 0.4);
        assert_eq!(p.n_partitions(), 1); // clamped to at least one partition
        assert_eq!(p.delta(), 0.1);
    }

    #[test]
    fn builder_accepts_paper_configs() {
        let p = SherlockParams::builder()
            .theta(0.05)
            .min_separation_power(0.0)
            .exec(ExecPolicy::Serial)
            .build()
            .unwrap();
        assert_eq!(p.theta(), 0.05);
        assert_eq!(p.min_separation_power(), 0.0);
        assert_eq!(p.exec(), ExecPolicy::Serial);
        // Untouched knobs keep the paper's defaults.
        assert_eq!(p.n_partitions(), 250);
    }

    #[test]
    fn builder_rejects_out_of_range() {
        for (result, knob) in [
            (SherlockParams::builder().theta(-0.1).build(), "theta"),
            (SherlockParams::builder().theta(f64::NAN).build(), "theta"),
            (SherlockParams::builder().delta(0.0).build(), "delta"),
            (SherlockParams::builder().n_partitions(0).build(), "n_partitions"),
            (SherlockParams::builder().min_separation_power(1.5).build(), "min_separation_power"),
            (SherlockParams::builder().gamma(1).build(), "gamma"),
            (SherlockParams::builder().lambda(2.0).build(), "lambda"),
            (SherlockParams::builder().tau(0).build(), "tau"),
            (SherlockParams::builder().pp_t(f64::INFINITY).build(), "pp_t"),
            (SherlockParams::builder().min_pts(0).build(), "min_pts"),
            (SherlockParams::builder().max_anomaly_fraction(0.0).build(), "max_anomaly_fraction"),
        ] {
            match result {
                Err(SherlockError::InvalidParam { name, .. }) => assert_eq!(name, knob),
                other => panic!("{knob}: expected InvalidParam, got {other:?}"),
            }
        }
    }

    #[test]
    fn budget_is_an_operational_knob() {
        // Defaults to unlimited, settable via both builder styles, and —
        // like `exec` — never serialized.
        assert!(SherlockParams::default().budget().is_unlimited());
        let budget = DiagnosisBudget::unlimited().with_deadline_ms(500).with_max_rows(10_000);
        let p = SherlockParams::default().with_budget(budget.clone());
        assert_eq!(p.budget(), &budget);
        let p = SherlockParams::builder().budget(budget.clone()).build().unwrap();
        assert_eq!(p.budget(), &budget);
        let json = serde_json::to_string(&p).unwrap();
        assert!(!json.contains("budget"));
        let back: SherlockParams = serde_json::from_str(&json).unwrap();
        assert!(back.budget().is_unlimited());
    }

    #[test]
    fn exec_policy_is_not_serialized() {
        let p = SherlockParams::default().with_exec(ExecPolicy::Threads(8));
        let json = serde_json::to_string(&p).unwrap();
        assert!(!json.contains("exec"));
        let back: SherlockParams = serde_json::from_str(&json).unwrap();
        // Round-trips to the default policy; algorithm knobs survive intact.
        assert_eq!(back.exec(), ExecPolicy::Auto);
        assert_eq!(back.theta(), p.theta());
    }
}
