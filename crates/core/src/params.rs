//! Tunable parameters of the DBSherlock algorithm.

use serde::{Deserialize, Serialize};

/// All knobs of the predicate-generation and diagnosis pipeline, with the
/// paper's defaults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SherlockParams {
    /// Number of equi-width partitions `R` for numeric attributes (§4.1).
    ///
    /// The paper's prose default is 1000; its own parameter study
    /// (Appendix D) runs the evaluation at `R = 250`, which it found to
    /// have indistinguishable confidence at a quarter of the cost, so that
    /// is our default too.
    pub n_partitions: usize,
    /// Normalized difference threshold `θ` (§4.5): a numeric predicate is
    /// kept only when `|µ_A − µ_N| > θ` on the min–max-normalized attribute.
    /// `0.2` for single causal models (§8.3); `0.05` when models will be
    /// merged (§8.5).
    pub theta: f64,
    /// Anomaly distance multiplier `δ` (§4.4): distances to Abnormal
    /// partitions are multiplied by `δ` while filling gaps, so `δ > 1`
    /// yields more specific predicates.
    pub delta: f64,
    /// Minimum tuple-level separation power (Eq. 1) a candidate predicate
    /// must reach on the training data to be emitted. §3 states
    /// DBSherlock's goal as "filter\[ing\] out individual attributes with low
    /// separation power" without fixing a threshold; we make the filter
    /// explicit. Attributes whose normal/abnormal clusters overlap
    /// materially (SP well below 1) produce predicates that do not
    /// transfer across anomaly instances.
    pub min_separation_power: f64,
    /// Bins per attribute (`γ`) for the joint histogram of the
    /// domain-knowledge independence test (§5).
    pub gamma: usize,
    /// Independence-factor threshold `κ_t` (§5): attributes with
    /// `κ >= κ_t` are considered dependent, validating the rule.
    pub kappa_t: f64,
    /// Minimum confidence `λ` for a causal model to be reported (§6).
    pub lambda: f64,
    /// Sliding-window size `τ` for the potential-power median filter (§7).
    pub tau: usize,
    /// Potential-power threshold `PP_t` for attribute selection (§7).
    pub pp_t: f64,
    /// DBSCAN `minPts` (§7 fixes it to 3).
    pub min_pts: usize,
    /// Maximum cluster size, as a fraction of all points, for a cluster to
    /// be reported as anomalous (§7 uses 20%).
    pub max_anomaly_fraction: f64,
}

impl Default for SherlockParams {
    fn default() -> Self {
        SherlockParams {
            n_partitions: 250,
            theta: 0.2,
            delta: 10.0,
            min_separation_power: 0.85,
            gamma: 10,
            kappa_t: 0.15,
            lambda: 0.2,
            tau: 20,
            pp_t: 0.3,
            min_pts: 3,
            max_anomaly_fraction: 0.2,
        }
    }
}

impl SherlockParams {
    /// The paper's configuration for building causal models that will be
    /// merged (§8.5): a lower θ (and a laxer separation-power floor) keeps
    /// more predicates per model so merging has material to work with —
    /// permissive generation + the strict attribute intersection of §6.2
    /// is what filters the unstable predicates in this regime.
    pub fn for_merging() -> Self {
        SherlockParams { theta: 0.05, min_separation_power: 0.5, ..SherlockParams::default() }
    }

    /// Builder-style override of `θ`.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Builder-style override of `R`.
    pub fn with_partitions(mut self, r: usize) -> Self {
        self.n_partitions = r.max(1);
        self
    }

    /// Builder-style override of `δ`.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Builder-style override of the separation-power floor.
    pub fn with_min_separation_power(mut self, floor: f64) -> Self {
        self.min_separation_power = floor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = SherlockParams::default();
        assert_eq!(p.n_partitions, 250);
        assert_eq!(p.theta, 0.2);
        assert_eq!(p.delta, 10.0);
        assert_eq!(p.kappa_t, 0.15);
        assert_eq!(p.lambda, 0.2);
        assert_eq!(p.tau, 20);
        assert_eq!(p.pp_t, 0.3);
        assert_eq!(p.min_pts, 3);
    }

    #[test]
    fn merging_profile_lowers_theta() {
        let p = SherlockParams::for_merging();
        assert_eq!(p.theta, 0.05);
        assert_eq!(p.n_partitions, 250);
    }

    #[test]
    fn builders_override() {
        let p = SherlockParams::default().with_theta(0.4).with_partitions(0).with_delta(0.1);
        assert_eq!(p.theta, 0.4);
        assert_eq!(p.n_partitions, 1); // clamped to at least one partition
        assert_eq!(p.delta, 0.1);
    }
}
