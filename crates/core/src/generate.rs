//! Algorithm 1: predicate generation (paper §4).
//!
//! Per attribute: build the partition space, label it from the abnormal and
//! normal regions, then (numeric only) filter noisy partitions and fill the
//! gaps; finally extract a candidate predicate when the single-block and
//! `|µ_A − µ_N| > θ` conditions hold. Categorical attributes skip the
//! filtering/filling steps and extract straight after labeling.

use dbsherlock_telemetry::{AttributeKind, AttributeMeta, ColumnarSnapshot, Dataset, Region};

use crate::budget::ArmedBudget;
use crate::error::SherlockError;
use crate::exec::{par_map_indexed, try_par_map_indexed};
use crate::extract::{extract_categorical_view, extract_numeric, normalized_mean_difference_view};
use crate::fill::fill_gaps_view;
use crate::filter::filter_partitions;
use crate::label::label_partitions_view;
use crate::params::SherlockParams;
use crate::partition::PartitionSpace;
use crate::predicate::Predicate;
use crate::separation::separation_power_view;

/// A generated predicate plus the statistics the algorithm computed for it.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedPredicate {
    /// The predicate itself.
    pub predicate: Predicate,
    /// Tuple-level separation power (Eq. 1) on the training data.
    pub separation_power: f64,
    /// Normalized mean difference `|µ_A − µ_N|` (numeric attributes; `1.0`
    /// recorded for categorical ones, which bypass the θ gate).
    pub normalized_diff: f64,
}

/// Ablation switches for the Appendix D step study (Table 6). The real
/// algorithm runs with both steps enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AblationFlags {
    /// Skip §4.3 partition filtering.
    pub skip_filtering: bool,
    /// Skip §4.4 gap filling.
    pub skip_filling: bool,
}

/// Generate the predicate conjunction explaining `abnormal` vs `normal`.
pub fn generate_predicates(
    dataset: &Dataset,
    abnormal: &Region,
    normal: &Region,
    params: &SherlockParams,
) -> Vec<GeneratedPredicate> {
    generate_predicates_ablated(dataset, abnormal, normal, params, AblationFlags::default())
}

/// [`generate_predicates`] with individual pipeline steps disabled
/// (Appendix D's "without Partition Filtering / Filling the Gaps" rows).
pub fn generate_predicates_ablated(
    dataset: &Dataset,
    abnormal: &Region,
    normal: &Region,
    params: &SherlockParams,
    ablation: AblationFlags,
) -> Vec<GeneratedPredicate> {
    generate_predicates_snapshot(&dataset.snapshot(), abnormal, normal, params, ablation)
}

/// [`generate_predicates_ablated`] over a pinned [`ColumnarSnapshot`]:
/// the columnar entry point. Callers running several stages against the
/// same dataset (e.g. `Sherlock::explain_*`) build one snapshot per case
/// so every kernel shares the memoized range cache.
pub fn generate_predicates_snapshot(
    snapshot: &ColumnarSnapshot<'_>,
    abnormal: &Region,
    normal: &Region,
    params: &SherlockParams,
    ablation: AblationFlags,
) -> Vec<GeneratedPredicate> {
    // Regions may have been defined over a healthier version of the data:
    // lossy ingestion drops rows, so clip before any column indexing.
    let abnormal = &abnormal.clip(snapshot.n_rows());
    let normal = &normal.clip(snapshot.n_rows());
    if abnormal.is_empty() || normal.is_empty() {
        return Vec::new();
    }
    // Each attribute is an independent run of Algorithm 1, so the schema
    // fans out across the thread budget; collecting by index keeps the
    // output in schema order, identical to the serial loop.
    let attrs: Vec<(usize, &AttributeMeta)> = snapshot.schema().iter().collect();
    par_map_indexed(params.exec, &attrs, |_, &(attr_id, attr)| {
        extract_for_attribute(snapshot, attr_id, attr, abnormal, normal, params, ablation)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// [`generate_predicates`] under a [`DiagnosisBudget`](crate::DiagnosisBudget):
/// the budget is checked before each attribute's run of Algorithm 1, and a
/// panic while processing any attribute is caught at that slot instead of
/// tearing down the caller. The first failure aborts the case (a partial
/// predicate conjunction would be a *wrong* answer, not a degraded one);
/// within budget, output is bit-identical to [`generate_predicates`].
pub fn try_generate_predicates(
    dataset: &Dataset,
    abnormal: &Region,
    normal: &Region,
    params: &SherlockParams,
    budget: &ArmedBudget,
) -> Result<Vec<GeneratedPredicate>, SherlockError> {
    try_generate_predicates_snapshot(&dataset.snapshot(), abnormal, normal, params, budget)
}

/// [`try_generate_predicates`] over a pinned [`ColumnarSnapshot`].
pub fn try_generate_predicates_snapshot(
    snapshot: &ColumnarSnapshot<'_>,
    abnormal: &Region,
    normal: &Region,
    params: &SherlockParams,
    budget: &ArmedBudget,
) -> Result<Vec<GeneratedPredicate>, SherlockError> {
    let abnormal = &abnormal.clip(snapshot.n_rows());
    let normal = &normal.clip(snapshot.n_rows());
    if abnormal.is_empty() || normal.is_empty() {
        return Ok(Vec::new());
    }
    let attrs: Vec<(usize, &AttributeMeta)> = snapshot.schema().iter().collect();
    let per_attr = try_par_map_indexed(params.exec, "generate", &attrs, |_, &(attr_id, attr)| {
        budget.check("generate")?;
        Ok(extract_for_attribute(
            snapshot,
            attr_id,
            attr,
            abnormal,
            normal,
            params,
            AblationFlags::default(),
        ))
    });
    let mut predicates = Vec::new();
    for slot in per_attr {
        if let Some(generated) = slot? {
            predicates.push(generated);
        }
    }
    Ok(predicates)
}

/// Algorithm 1 for a single attribute: partition, label, (numeric) filter and
/// fill, then extract — the unit of work the parallel executor maps over.
/// All inputs come from the snapshot: one column view, one memoized range,
/// zero per-cell accesses.
fn extract_for_attribute(
    snapshot: &ColumnarSnapshot<'_>,
    attr_id: usize,
    attr: &AttributeMeta,
    abnormal: &Region,
    normal: &Region,
    params: &SherlockParams,
    ablation: AblationFlags,
) -> Option<GeneratedPredicate> {
    let view = snapshot.column(attr_id);
    let space = match attr.kind {
        AttributeKind::Numeric => PartitionSpace::from_numeric_range(
            snapshot.numeric_range(attr_id),
            params.n_partitions,
        )?,
        AttributeKind::Categorical => PartitionSpace::from_dictionary(view.categorical()?.1)?,
    };
    let labels = label_partitions_view(view, &space, abnormal, normal);
    match attr.kind {
        AttributeKind::Numeric => {
            let values = view.numeric()?;
            let filtered =
                if ablation.skip_filtering { labels } else { filter_partitions(&labels) };
            let filled = if ablation.skip_filling {
                filtered
            } else {
                fill_gaps_view(&filtered, params.delta, values, &space, normal)
            };
            let d = normalized_mean_difference_view(
                values,
                snapshot.numeric_range(attr_id)?,
                abnormal,
                normal,
            )?;
            if d <= params.theta {
                return None;
            }
            let predicate = extract_numeric(&attr.name, &space, &filled)?;
            let sp = separation_power_view(&predicate, view, abnormal, normal);
            (sp >= params.min_separation_power).then_some(GeneratedPredicate {
                predicate,
                separation_power: sp,
                normalized_diff: d,
            })
        }
        AttributeKind::Categorical => {
            let predicate = extract_categorical_view(&attr.name, view.categorical()?.1, &labels)?;
            let sp = separation_power_view(&predicate, view, abnormal, normal);
            (sp >= params.min_separation_power).then_some(GeneratedPredicate {
                predicate,
                separation_power: sp,
                normalized_diff: 1.0,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::PredicateOp;
    use dbsherlock_telemetry::{AttributeMeta, Value};

    /// Two numeric attributes: `signal` jumps from ~10 to ~90 in the
    /// abnormal region, `noise` is unrelated; one categorical attribute
    /// flips to "bad" while abnormal.
    fn dataset() -> (Dataset, Region, Region) {
        let attrs = [
            AttributeMeta::numeric("signal"),
            AttributeMeta::numeric("noise"),
            AttributeMeta::categorical("state"),
        ];
        let d = crate::fixtures::build_dataset(attrs, 60, |d, i| {
            let abnormal = (40..50).contains(&i);
            let signal = if abnormal { 90.0 + (i % 5) as f64 } else { 10.0 + (i % 7) as f64 };
            let noise = (i % 13) as f64;
            let state = d
                .intern(2, if abnormal { "bad" } else { "ok" })
                .unwrap_or_else(|e| panic!("fixture intern at row {i} rejected: {e}"));
            vec![Value::Num(signal), Value::Num(noise), state]
        });
        let abnormal = Region::from_range(40..50);
        let normal = abnormal.complement(60);
        (d, abnormal, normal)
    }

    #[test]
    fn finds_signal_and_state_not_noise() {
        let (d, abnormal, normal) = dataset();
        let preds = generate_predicates(&d, &abnormal, &normal, &SherlockParams::default());
        let names: Vec<&str> = preds.iter().map(|p| p.predicate.attr.as_str()).collect();
        assert!(names.contains(&"signal"), "{names:?}");
        assert!(names.contains(&"state"), "{names:?}");
        assert!(!names.contains(&"noise"), "{names:?}");
    }

    #[test]
    fn signal_predicate_separates_perfectly() {
        let (d, abnormal, normal) = dataset();
        let preds = generate_predicates(&d, &abnormal, &normal, &SherlockParams::default());
        let signal = preds.iter().find(|p| p.predicate.attr == "signal").unwrap();
        assert!(signal.separation_power > 0.99, "sp {}", signal.separation_power);
        assert!(signal.normalized_diff > 0.5);
        // Direction: abnormal values are high, so the predicate must be
        // `Gt` (or `Between` anchored high).
        match signal.predicate.op {
            PredicateOp::Gt(x) => assert!(x > 20.0 && x < 90.0, "cut {x}"),
            PredicateOp::Between(lo, _) => assert!(lo > 20.0),
            ref other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn categorical_predicate_collects_bad_state() {
        let (d, abnormal, normal) = dataset();
        let preds = generate_predicates(&d, &abnormal, &normal, &SherlockParams::default());
        let state = preds.iter().find(|p| p.predicate.attr == "state").unwrap();
        assert_eq!(state.predicate.op, PredicateOp::InSet(vec!["bad".to_string()]));
        assert!(state.separation_power > 0.99);
    }

    #[test]
    fn theta_gates_weak_attributes() {
        let (d, abnormal, normal) = dataset();
        // θ = 0.99 rejects even the strong signal.
        let params = SherlockParams::default().with_theta(0.99);
        let preds = generate_predicates(&d, &abnormal, &normal, &params);
        assert!(preds.iter().all(|p| p.predicate.attr != "signal"));
    }

    #[test]
    fn empty_regions_yield_nothing() {
        let (d, abnormal, _) = dataset();
        let params = SherlockParams::default();
        assert!(generate_predicates(&d, &Region::new(), &abnormal, &params).is_empty());
        assert!(generate_predicates(&d, &abnormal, &Region::new(), &params).is_empty());
    }

    #[test]
    fn budgeted_generate_matches_unbudgeted_within_budget() {
        let (d, abnormal, normal) = dataset();
        let params = SherlockParams::default();
        let plain = generate_predicates(&d, &abnormal, &normal, &params);
        let budgeted =
            try_generate_predicates(&d, &abnormal, &normal, &params, &ArmedBudget::unlimited())
                .unwrap();
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn blown_deadline_aborts_the_case() {
        let (d, abnormal, normal) = dataset();
        let params = SherlockParams::default();
        let armed = crate::budget::DiagnosisBudget::unlimited().with_deadline_ms(0).arm();
        let result = try_generate_predicates(&d, &abnormal, &normal, &params, &armed);
        assert!(matches!(result, Err(SherlockError::DeadlineExceeded { stage: "generate", .. })));
    }

    #[test]
    fn ablations_degrade_output() {
        let (d, abnormal, normal) = dataset();
        let params = SherlockParams::default();
        let full = generate_predicates(&d, &abnormal, &normal, &params);
        let no_fill = generate_predicates_ablated(
            &d,
            &abnormal,
            &normal,
            &params,
            AblationFlags { skip_filling: true, ..Default::default() },
        );
        // Without gap filling, the block structure is fragmented by Empty
        // partitions, so the numeric predicate disappears (or at best gets
        // no stronger).
        let full_numeric = full.iter().filter(|p| p.predicate.op.is_numeric()).count();
        let ablated_numeric = no_fill.iter().filter(|p| p.predicate.op.is_numeric()).count();
        assert!(ablated_numeric <= full_numeric);
    }
}
