//! The unified error type for the diagnosis engine's public API.

use std::fmt;

use dbsherlock_telemetry::TelemetryError;

/// Everything that can go wrong on a fallible public path of the core crate.
///
/// One taxonomy instead of the historical mix of `Option`s, stringly
/// `Result<_, String>`s, and silently-empty results: parameter validation,
/// domain-knowledge consistency, empty inputs, and telemetry-layer failures
/// all surface here. Marked `#[non_exhaustive]` so future variants are not a
/// breaking change — match with a `_` arm.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum SherlockError {
    /// A parameter failed builder validation.
    InvalidParam {
        /// Knob name as spelled on [`crate::SherlockParams`].
        name: &'static str,
        /// The rejected value, rendered.
        value: String,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// Two domain-knowledge rules assert contradictory directions for the
    /// same cause/effect pair.
    ConflictingRules {
        /// Description of the offending rule pair.
        detail: String,
    },
    /// An operation that needs data received none.
    EmptyInput(&'static str),
    /// A region was empty (or clipped to empty against the dataset).
    EmptyRegion {
        /// Which region: "abnormal" or "normal".
        what: &'static str,
        /// Row count of the dataset it was clipped against.
        n_rows: usize,
    },
    /// A failure bubbled up from the telemetry layer.
    Telemetry(TelemetryError),
    /// A pipeline task panicked. The panic was caught at the slot boundary
    /// (see [`crate::exec::try_par_map_indexed`]) so the rest of the batch
    /// kept its results; only the offending slot carries this error.
    TaskPanicked {
        /// Pipeline stage that hosted the panicking task.
        stage: &'static str,
        /// The panic payload, rendered (message of `panic!`, or a
        /// placeholder for non-string payloads).
        message: String,
    },
    /// The wall-clock deadline of the [`crate::DiagnosisBudget`] expired
    /// before this stage could run. Results produced by slots that finished
    /// in time are unaffected.
    DeadlineExceeded {
        /// Pipeline stage at which the cooperative check fired.
        stage: &'static str,
        /// The configured deadline, in milliseconds.
        budget_ms: u64,
    },
    /// An input exceeded a hard size limit of the
    /// [`crate::DiagnosisBudget`] and was rejected up front (runaway-input
    /// protection; deterministic, unlike the wall-clock deadline).
    BudgetExceeded {
        /// Which limit: "rows" or "partitions".
        what: &'static str,
        /// The offending size.
        actual: usize,
        /// The configured maximum.
        limit: usize,
    },
    /// The [`crate::CancelFlag`] of the budget was raised; the diagnosis
    /// stopped cooperatively at the next stage boundary.
    Cancelled {
        /// Pipeline stage at which the cooperative check fired.
        stage: &'static str,
    },
    /// The crash-safe [`crate::ModelStore`] could not complete an
    /// operation. Corruption is *not* reported here — a corrupt file is
    /// quarantined and recovery proceeds; this variant covers real I/O or
    /// serialization failures that leave nothing to recover with.
    Store {
        /// Path of the store file involved.
        path: String,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for SherlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SherlockError::InvalidParam { name, value, reason } => {
                write!(f, "invalid parameter {name} = {value}: {reason}")
            }
            SherlockError::ConflictingRules { detail } => {
                write!(f, "conflicting domain rules: {detail}")
            }
            SherlockError::EmptyInput(what) => write!(f, "empty input: {what}"),
            SherlockError::EmptyRegion { what, n_rows } => {
                write!(f, "{what} region is empty after clipping to {n_rows} rows")
            }
            SherlockError::Telemetry(e) => write!(f, "telemetry error: {e}"),
            SherlockError::TaskPanicked { stage, message } => {
                write!(f, "task panicked during {stage}: {message}")
            }
            SherlockError::DeadlineExceeded { stage, budget_ms } => {
                write!(f, "deadline of {budget_ms} ms exceeded at {stage}")
            }
            SherlockError::BudgetExceeded { what, actual, limit } => {
                write!(f, "budget exceeded: {actual} {what} > limit of {limit}")
            }
            SherlockError::Cancelled { stage } => write!(f, "diagnosis cancelled at {stage}"),
            SherlockError::Store { path, detail } => {
                write!(f, "model store failure at {path}: {detail}")
            }
        }
    }
}

impl std::error::Error for SherlockError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SherlockError::Telemetry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TelemetryError> for SherlockError {
    fn from(e: TelemetryError) -> Self {
        SherlockError::Telemetry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SherlockError::InvalidParam {
            name: "theta",
            value: "-1".into(),
            reason: "must lie in [0, 1]",
        };
        assert!(e.to_string().contains("theta"));
        let e = SherlockError::EmptyRegion { what: "abnormal", n_rows: 42 };
        assert!(e.to_string().contains("abnormal") && e.to_string().contains("42"));
    }

    #[test]
    fn hardening_variants_display_their_anchors() {
        let e = SherlockError::TaskPanicked { stage: "rank", message: "boom".into() };
        assert!(e.to_string().contains("rank") && e.to_string().contains("boom"));
        let e = SherlockError::DeadlineExceeded { stage: "generate", budget_ms: 250 };
        assert!(e.to_string().contains("250") && e.to_string().contains("generate"));
        let e = SherlockError::BudgetExceeded { what: "rows", actual: 9000, limit: 100 };
        assert!(e.to_string().contains("9000") && e.to_string().contains("rows"));
        let e = SherlockError::Cancelled { stage: "detect" };
        assert!(e.to_string().contains("detect"));
    }

    #[test]
    fn telemetry_errors_convert_and_chain() {
        let e: SherlockError = TelemetryError::Empty("dataset").into();
        assert!(matches!(e, SherlockError::Telemetry(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
