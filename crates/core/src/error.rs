//! The unified error type for the diagnosis engine's public API.

use std::fmt;

use dbsherlock_telemetry::TelemetryError;

/// Everything that can go wrong on a fallible public path of the core crate.
///
/// One taxonomy instead of the historical mix of `Option`s, stringly
/// `Result<_, String>`s, and silently-empty results: parameter validation,
/// domain-knowledge consistency, empty inputs, and telemetry-layer failures
/// all surface here. Marked `#[non_exhaustive]` so future variants are not a
/// breaking change — match with a `_` arm.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum SherlockError {
    /// A parameter failed builder validation.
    InvalidParam {
        /// Knob name as spelled on [`crate::SherlockParams`].
        name: &'static str,
        /// The rejected value, rendered.
        value: String,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// Two domain-knowledge rules assert contradictory directions for the
    /// same cause/effect pair.
    ConflictingRules {
        /// Description of the offending rule pair.
        detail: String,
    },
    /// An operation that needs data received none.
    EmptyInput(&'static str),
    /// A region was empty (or clipped to empty against the dataset).
    EmptyRegion {
        /// Which region: "abnormal" or "normal".
        what: &'static str,
        /// Row count of the dataset it was clipped against.
        n_rows: usize,
    },
    /// A failure bubbled up from the telemetry layer.
    Telemetry(TelemetryError),
}

impl fmt::Display for SherlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SherlockError::InvalidParam { name, value, reason } => {
                write!(f, "invalid parameter {name} = {value}: {reason}")
            }
            SherlockError::ConflictingRules { detail } => {
                write!(f, "conflicting domain rules: {detail}")
            }
            SherlockError::EmptyInput(what) => write!(f, "empty input: {what}"),
            SherlockError::EmptyRegion { what, n_rows } => {
                write!(f, "{what} region is empty after clipping to {n_rows} rows")
            }
            SherlockError::Telemetry(e) => write!(f, "telemetry error: {e}"),
        }
    }
}

impl std::error::Error for SherlockError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SherlockError::Telemetry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TelemetryError> for SherlockError {
    fn from(e: TelemetryError) -> Self {
        SherlockError::Telemetry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SherlockError::InvalidParam {
            name: "theta",
            value: "-1".into(),
            reason: "must lie in [0, 1]",
        };
        assert!(e.to_string().contains("theta"));
        let e = SherlockError::EmptyRegion { what: "abnormal", n_rows: 42 };
        assert!(e.to_string().contains("abnormal") && e.to_string().contains("42"));
    }

    #[test]
    fn telemetry_errors_convert_and_chain() {
        let e: SherlockError = TelemetryError::Empty("dataset").into();
        assert!(matches!(e, SherlockError::Telemetry(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
