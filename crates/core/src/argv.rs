//! Shared, `clap`-free command-line parsing for the workspace binaries.
//!
//! `dbsherlock-cli` and `sherlockd` both speak the same small dialect of
//! flags — `--deadline-ms`, `--threads`, `--strict`, … — and before this
//! module each binary hand-rolled its own `--name value` scanner. The
//! duplication was harmless until the daemon arrived with a dozen more
//! knobs; now both front ends parse through [`ArgScan`] and share the
//! budget/exec helpers, so a flag means the same thing (and fails the same
//! way) everywhere.
//!
//! Deliberately tiny: positionals-first conventions, `--name value`
//! options, bare `--name` flags. Errors are plain `String`s — each binary
//! wraps them in its own error/exit-code scheme.

use std::str::FromStr;

use crate::budget::DiagnosisBudget;
use crate::exec::ExecPolicy;

/// A borrowed view over `std::env::args().skip(1)`-style argument lists.
#[derive(Debug, Clone, Copy)]
pub struct ArgScan<'a> {
    args: &'a [String],
}

impl<'a> ArgScan<'a> {
    /// Scan over an argument slice.
    pub fn new(args: &'a [String]) -> Self {
        ArgScan { args }
    }

    /// The raw argument slice.
    pub fn raw(&self) -> &'a [String] {
        self.args
    }

    /// The value following `--name`, if present.
    pub fn option(&self, name: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    /// Is the bare flag `--name` present?
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// `--name value` parsed as `T`; `Ok(None)` when absent, `Err` with a
    /// uniform message when present but unparseable.
    pub fn parsed<T: FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.option(name) {
            None => Ok(None),
            Some(raw) => raw.parse::<T>().map(Some).map_err(|_| format!("bad {name} {raw:?}")),
        }
    }

    /// Like [`parsed`](Self::parsed) with a default for the absent case.
    pub fn parsed_or<T: FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        Ok(self.parsed(name)?.unwrap_or(default))
    }

    /// The `i`-th leading positional (arguments before the first `--flag`).
    pub fn positional(&self, i: usize) -> Option<&'a str> {
        self.args.iter().take_while(|a| !a.starts_with("--")).nth(i).map(String::as_str)
    }

    /// `--threads <N|serial|auto>` as an [`ExecPolicy`]; `None` when absent.
    pub fn exec_policy(&self) -> Result<Option<ExecPolicy>, String> {
        let Some(raw) = self.option("--threads") else { return Ok(None) };
        let policy = match raw {
            "auto" => ExecPolicy::Auto,
            "serial" | "1" => ExecPolicy::Serial,
            n => ExecPolicy::Threads(n.parse().map_err(|_| format!("bad --threads {raw:?}"))?),
        };
        Ok(Some(policy))
    }

    /// The budget flags — `--deadline-ms N`, `--max-rows N`,
    /// `--max-partitions N` — folded into one [`DiagnosisBudget`]; `None`
    /// when no budget flag is present.
    pub fn budget(&self) -> Result<Option<DiagnosisBudget>, String> {
        let deadline: Option<u64> = self.parsed("--deadline-ms")?;
        let max_rows: Option<usize> = self.parsed("--max-rows")?;
        let max_partitions: Option<usize> = self.parsed("--max-partitions")?;
        if deadline.is_none() && max_rows.is_none() && max_partitions.is_none() {
            return Ok(None);
        }
        let mut budget = DiagnosisBudget::unlimited();
        if let Some(ms) = deadline {
            budget = budget.with_deadline_ms(ms);
        }
        if let Some(rows) = max_rows {
            budget = budget.with_max_rows(rows);
        }
        if let Some(parts) = max_partitions {
            budget = budget.with_max_partitions(parts);
        }
        Ok(Some(budget))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn options_flags_and_positionals() {
        let argv = args(&["incident.csv", "extra", "--abnormal", "60..110", "--strict"]);
        let scan = ArgScan::new(&argv);
        assert_eq!(scan.option("--abnormal"), Some("60..110"));
        assert_eq!(scan.option("--normal"), None);
        assert!(scan.flag("--strict"));
        assert!(!scan.flag("--quiet"));
        assert_eq!(scan.positional(0), Some("incident.csv"));
        assert_eq!(scan.positional(1), Some("extra"));
        assert_eq!(scan.positional(2), None);
    }

    #[test]
    fn typed_parsing_reports_uniform_errors() {
        let argv = args(&["--port", "not-a-number", "--len", "42"]);
        let scan = ArgScan::new(&argv);
        assert_eq!(scan.parsed::<u16>("--len"), Ok(Some(42)));
        assert_eq!(scan.parsed::<u16>("--port"), Err("bad --port \"not-a-number\"".into()));
        assert_eq!(scan.parsed_or::<u16>("--missing", 7), Ok(7));
    }

    #[test]
    fn exec_policy_spellings() {
        for (raw, expect) in [
            ("auto", ExecPolicy::Auto),
            ("serial", ExecPolicy::Serial),
            ("1", ExecPolicy::Serial),
            ("4", ExecPolicy::Threads(4)),
        ] {
            let argv = args(&["--threads", raw]);
            assert_eq!(ArgScan::new(&argv).exec_policy(), Ok(Some(expect)), "{raw}");
        }
        let empty = args(&[]);
        assert_eq!(ArgScan::new(&empty).exec_policy(), Ok(None));
        let bad = args(&["--threads", "many"]);
        assert!(ArgScan::new(&bad).exec_policy().is_err());
    }

    #[test]
    fn budget_folds_all_three_axes() {
        let argv = args(&["--deadline-ms", "250", "--max-rows", "10000", "--max-partitions", "64"]);
        let budget = ArgScan::new(&argv).budget().unwrap().unwrap();
        let expect = DiagnosisBudget::unlimited()
            .with_deadline_ms(250)
            .with_max_rows(10000)
            .with_max_partitions(64);
        assert_eq!(budget, expect);

        let empty = args(&[]);
        assert_eq!(ArgScan::new(&empty).budget(), Ok(None));
        let bad = args(&["--deadline-ms", "soon"]);
        assert!(ArgScan::new(&bad).budget().is_err());
    }
}
