//! Separation power (paper Eq. 1) on tuples and on partition spaces.

use dbsherlock_telemetry::{ColumnView, Dataset, Region};

use crate::partition::{PartitionLabel, PartitionSpace};
use crate::predicate::{Predicate, PredicateOp};

/// Tuple-level separation power (Eq. 1):
/// `SP(Pred) = |Pred(T_A)| / |T_A|  −  |Pred(T_N)| / |T_N|`, in `[-1, 1]`.
/// Unknown attributes score `0`.
pub fn separation_power(
    predicate: &Predicate,
    dataset: &Dataset,
    abnormal: &Region,
    normal: &Region,
) -> f64 {
    let Some(attr_id) = dataset.schema().id_of(&predicate.attr) else {
        return 0.0;
    };
    separation_power_view(predicate, dataset.column(attr_id), abnormal, normal)
}

/// [`separation_power`] over an already-resolved column view: fills the
/// predicate's mask once, then counts hits over both regions — one column
/// scan instead of two row-wise selectivity passes.
pub fn separation_power_view(
    predicate: &Predicate,
    view: ColumnView<'_>,
    abnormal: &Region,
    normal: &Region,
) -> f64 {
    let mut mask = Vec::new();
    predicate.fill_mask(view, &mut mask);
    let frac = |region: &Region| -> f64 {
        let rows = region.indices();
        if rows.is_empty() {
            return 0.0;
        }
        let hits = rows.iter().filter(|&&r| mask.get(r).copied().unwrap_or(false)).count();
        hits as f64 / rows.len() as f64
    };
    frac(abnormal) - frac(normal)
}

/// Does partition `j` of `space` satisfy `predicate`?
///
/// The paper's confidence definition (Eq. 3) needs `Pred(P)` — "the set of
/// partitions in P that satisfy predicate Pred" — without pinning down
/// what it means for an interval partition to satisfy an interval
/// predicate. We test the partition's *midpoint* for numeric spaces (a
/// partition is far narrower than any predicate of interest at the default
/// R, so midpoint vs. overlap is immaterial) and the partition's category
/// label for categorical spaces.
pub fn partition_satisfies(
    predicate: &Predicate,
    space: &PartitionSpace,
    dataset: &Dataset,
    attr_id: usize,
    j: usize,
) -> bool {
    match space {
        PartitionSpace::Numeric { .. } => {
            space.midpoint(j).map(|m| predicate.op.matches_num(m)).unwrap_or(false)
        }
        PartitionSpace::Categorical { .. } => {
            let Ok((_, dict)) = dataset.categorical(attr_id) else {
                return false;
            };
            dict.label(j as u32).map(|l| predicate.op.matches_label(l)).unwrap_or(false)
        }
    }
}

/// Partition-space separation power — one term of the causal-model
/// confidence (Eq. 3):
/// `|Pred(P_A)| / |P_A| − |Pred(P_N)| / |P_N|` over the *labeled*
/// partitions of the diagnosis-time dataset. A side with no partitions
/// contributes `0` to its ratio.
pub fn partition_separation_power(
    predicate: &Predicate,
    space: &PartitionSpace,
    labels: &[PartitionLabel],
    dataset: &Dataset,
    attr_id: usize,
) -> f64 {
    // Resolve satisfaction once per column: midpoint tests stay per-
    // partition arithmetic, categorical tests become one dictionary
    // lookup per distinct category instead of one per labeled partition.
    let satisfies: Vec<bool> = match space {
        PartitionSpace::Numeric { .. } => (0..labels.len())
            .map(|j| space.midpoint(j).map(|m| predicate.op.matches_num(m)).unwrap_or(false))
            .collect(),
        PartitionSpace::Categorical { .. } => match dataset.categorical(attr_id) {
            Ok((_, dict)) => {
                let table = predicate.op.category_table(dict);
                (0..labels.len()).map(|j| table.get(j).copied().unwrap_or(false)).collect()
            }
            Err(_) => vec![false; labels.len()],
        },
    };
    let mut abnormal_total = 0usize;
    let mut abnormal_hits = 0usize;
    let mut normal_total = 0usize;
    let mut normal_hits = 0usize;
    for (j, &label) in labels.iter().enumerate() {
        let sat = satisfies.get(j).copied().unwrap_or(false);
        match label {
            PartitionLabel::Abnormal => {
                abnormal_total += 1;
                if sat {
                    abnormal_hits += 1;
                }
            }
            PartitionLabel::Normal => {
                normal_total += 1;
                if sat {
                    normal_hits += 1;
                }
            }
            PartitionLabel::Empty => {}
        }
    }
    let ratio = |hits: usize, total: usize| {
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    };
    ratio(abnormal_hits, abnormal_total) - ratio(normal_hits, normal_total)
}

/// Sanity helper: a predicate op directed "upwards" (`Gt`) vs "downwards"
/// (`Lt`); `Between`/`InSet` are direction-free. Used by model merging.
pub fn numeric_direction(op: &PredicateOp) -> Option<bool> {
    match op {
        PredicateOp::Gt(_) => Some(true),
        PredicateOp::Lt(_) => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::numeric_dataset as dataset;

    #[test]
    fn perfect_separator_scores_one() {
        let d = dataset(&[1.0, 2.0, 3.0, 10.0, 11.0, 12.0]);
        let abnormal = Region::from_range(3..6);
        let normal = Region::from_range(0..3);
        let p = Predicate::gt("x", 5.0);
        assert_eq!(separation_power(&p, &d, &abnormal, &normal), 1.0);
        // Inverted predicate scores -1.
        let q = Predicate::lt("x", 5.0);
        assert_eq!(separation_power(&q, &d, &abnormal, &normal), -1.0);
    }

    #[test]
    fn non_separating_predicate_scores_zero() {
        let d = dataset(&[1.0, 10.0, 1.0, 10.0]);
        let abnormal = Region::from_indices([0, 1]);
        let normal = Region::from_indices([2, 3]);
        let p = Predicate::gt("x", 5.0);
        assert_eq!(separation_power(&p, &d, &abnormal, &normal), 0.0);
    }

    #[test]
    fn separation_power_bounded() {
        let d = dataset(&[1.0, 2.0, 3.0, 4.0]);
        let p = Predicate::gt("x", 2.5);
        let sp = separation_power(&p, &d, &Region::from_range(0..2), &Region::from_range(2..4));
        assert!((-1.0..=1.0).contains(&sp));
    }

    #[test]
    fn partition_satisfaction_uses_midpoints() {
        let space = PartitionSpace::Numeric { min: 0.0, max: 100.0, r: 10 };
        let d = dataset(&[0.0, 100.0]);
        let p = Predicate::gt("x", 45.0);
        // Partition 4 covers [40,50): midpoint 45 -> not > 45.
        assert!(!partition_satisfies(&p, &space, &d, 0, 4));
        // Partition 5 covers [50,60): midpoint 55 -> satisfied.
        assert!(partition_satisfies(&p, &space, &d, 0, 5));
    }

    #[test]
    fn partition_separation_power_full_split() {
        use crate::partition::PartitionLabel::{Abnormal as A, Empty as E, Normal as N};
        let space = PartitionSpace::Numeric { min: 0.0, max: 100.0, r: 4 };
        let d = dataset(&[0.0, 100.0]);
        let labels = [N, N, E, A];
        // Predicate matching only the top partition's midpoint (87.5).
        let p = Predicate::gt("x", 80.0);
        let sp = partition_separation_power(&p, &space, &labels, &d, 0);
        assert_eq!(sp, 1.0);
        // A predicate matching everything has zero separation power.
        let all = Predicate::gt("x", -1.0);
        assert_eq!(partition_separation_power(&all, &space, &labels, &d, 0), 0.0);
    }

    #[test]
    fn missing_sides_contribute_zero() {
        use crate::partition::PartitionLabel::{Abnormal as A, Empty as E};
        let space = PartitionSpace::Numeric { min: 0.0, max: 100.0, r: 2 };
        let d = dataset(&[0.0, 100.0]);
        let labels = [E, A];
        let p = Predicate::gt("x", 50.0);
        assert_eq!(partition_separation_power(&p, &space, &labels, &d, 0), 1.0);
    }

    #[test]
    fn directions() {
        assert_eq!(numeric_direction(&PredicateOp::Gt(1.0)), Some(true));
        assert_eq!(numeric_direction(&PredicateOp::Lt(1.0)), Some(false));
        assert_eq!(numeric_direction(&PredicateOp::Between(0.0, 1.0)), None);
        assert_eq!(numeric_direction(&PredicateOp::InSet(vec![])), None);
    }
}
