//! Remediation memory and auto-remediation policy — the paper's stated
//! future work (§10): *"documenting and storing the actions taken by the
//! DBA to use as a suggestion for future occurrences of the same anomaly"*
//! and *"enabl\[ing\] automatic actions for rectifying simple forms of
//! performance anomaly … once they are detected and diagnosed with high
//! confidence"*.
//!
//! The [`ActionLog`] remembers what the DBA did about each confirmed
//! cause; on later diagnoses those actions are surfaced as suggestions,
//! most-frequently-successful first. An [`AutoRemediationPolicy`] turns a
//! high-confidence diagnosis into a machine-actionable decision, with a
//! dry-run default so nothing irreversible happens without an operator.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::causal::RankedCause;

/// One remembered remediation for a cause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Remediation {
    /// What the DBA did, e.g. "throttled tenant 42", "enabled adaptive
    /// flushing", "provisioned faster disk".
    pub action: String,
    /// How often this action was recorded for the cause.
    pub times_used: usize,
    /// How often the DBA reported it actually resolved the incident.
    pub times_successful: usize,
}

impl Remediation {
    /// Empirical success rate in `[0, 1]` (unknown-outcome uses count 0).
    pub fn success_rate(&self) -> f64 {
        if self.times_used == 0 {
            0.0
        } else {
            self.times_successful as f64 / self.times_used as f64
        }
    }
}

/// Per-cause memory of remediations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ActionLog {
    actions: HashMap<String, Vec<Remediation>>,
}

impl ActionLog {
    /// Empty log.
    pub fn new() -> Self {
        ActionLog::default()
    }

    /// Record that `action` was taken for `cause`; `resolved` is whether
    /// it fixed the incident.
    pub fn record(&mut self, cause: &str, action: &str, resolved: bool) {
        let entries = self.actions.entry(cause.to_string()).or_default();
        if let Some(entry) = entries.iter_mut().find(|r| r.action == action) {
            entry.times_used += 1;
            if resolved {
                entry.times_successful += 1;
            }
        } else {
            entries.push(Remediation {
                action: action.to_string(),
                times_used: 1,
                times_successful: usize::from(resolved),
            });
        }
    }

    /// Suggestions for `cause`, best success rate first (ties broken by
    /// usage count).
    pub fn suggestions(&self, cause: &str) -> Vec<&Remediation> {
        let mut entries: Vec<&Remediation> =
            self.actions.get(cause).map(|v| v.iter().collect()).unwrap_or_default();
        entries.sort_by(|a, b| {
            b.success_rate().total_cmp(&a.success_rate()).then(b.times_used.cmp(&a.times_used))
        });
        entries
    }

    /// Number of causes with at least one remembered action.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// A machine-executable counter-measure for one cause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoAction {
    /// Cause label this action answers.
    pub cause: String,
    /// Operator-readable description of the intervention, e.g.
    /// "throttle background dump to 10 MB/s".
    pub action: String,
}

/// What the policy decided for one diagnosis.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Confidence too low, or no action registered: hand to the DBA.
    Escalate {
        /// Why the policy did not act.
        reason: String,
    },
    /// An action would be taken (dry-run) or should be taken (armed).
    Act {
        /// The selected action.
        action: AutoAction,
        /// True when the policy is in dry-run mode and only *recommends*.
        dry_run: bool,
    },
}

/// Automatic-remediation policy: act only on well-known causes diagnosed
/// with high confidence.
#[derive(Debug, Clone)]
pub struct AutoRemediationPolicy {
    /// Minimum confidence before acting (well above λ; the paper demands
    /// "detected and diagnosed with high confidence").
    pub min_confidence: f64,
    /// Require this margin over the runner-up cause, so ambiguous
    /// diagnoses always escalate.
    pub min_margin: f64,
    /// Registered actions per cause.
    pub actions: HashMap<String, String>,
    /// When true (default), decisions are recommendations only.
    pub dry_run: bool,
}

impl Default for AutoRemediationPolicy {
    fn default() -> Self {
        AutoRemediationPolicy {
            min_confidence: 0.75,
            min_margin: 0.15,
            actions: HashMap::new(),
            dry_run: true,
        }
    }
}

impl AutoRemediationPolicy {
    /// Register an action for a cause (builder style).
    pub fn with_action(mut self, cause: &str, action: &str) -> Self {
        self.actions.insert(cause.to_string(), action.to_string());
        self
    }

    /// Arm the policy (decisions stop being dry-run).
    pub fn armed(mut self) -> Self {
        self.dry_run = false;
        self
    }

    /// Decide on a ranked diagnosis (best cause first, as produced by
    /// [`ModelRepository::rank`](crate::causal::ModelRepository::rank)).
    pub fn decide(&self, ranked: &[RankedCause]) -> Decision {
        let Some(top) = ranked.first() else {
            return Decision::Escalate { reason: "no stored causal models".into() };
        };
        if top.confidence < self.min_confidence {
            return Decision::Escalate {
                reason: format!(
                    "top cause {:?} at confidence {:.2} below threshold {:.2}",
                    top.cause, top.confidence, self.min_confidence
                ),
            };
        }
        if let Some(second) = ranked.get(1) {
            if top.confidence - second.confidence < self.min_margin {
                return Decision::Escalate {
                    reason: format!(
                        "ambiguous: {:?} ({:.2}) vs {:?} ({:.2})",
                        top.cause, top.confidence, second.cause, second.confidence
                    ),
                };
            }
        }
        match self.actions.get(&top.cause) {
            Some(action) => Decision::Act {
                action: AutoAction { cause: top.cause.clone(), action: action.clone() },
                dry_run: self.dry_run,
            },
            None => Decision::Escalate {
                reason: format!("no registered action for cause {:?}", top.cause),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranked(pairs: &[(&str, f64)]) -> Vec<RankedCause> {
        pairs
            .iter()
            .map(|(c, conf)| RankedCause { cause: c.to_string(), confidence: *conf })
            .collect()
    }

    #[test]
    fn action_log_aggregates_and_ranks() {
        let mut log = ActionLog::new();
        log.record("I/O Saturation", "throttle backup", true);
        log.record("I/O Saturation", "throttle backup", true);
        log.record("I/O Saturation", "restart server", false);
        log.record("I/O Saturation", "restart server", true);
        log.record("Lock Contention", "spread hot keys", true);
        assert_eq!(log.len(), 2);
        let suggestions = log.suggestions("I/O Saturation");
        assert_eq!(suggestions[0].action, "throttle backup");
        assert_eq!(suggestions[0].times_used, 2);
        assert!((suggestions[0].success_rate() - 1.0).abs() < 1e-12);
        assert!((suggestions[1].success_rate() - 0.5).abs() < 1e-12);
        assert!(log.suggestions("unknown").is_empty());
    }

    #[test]
    fn policy_acts_only_with_confidence_and_margin() {
        let policy = AutoRemediationPolicy::default()
            .with_action("I/O Saturation", "throttle external writer");
        // Confident + unambiguous: act (dry-run by default).
        match policy.decide(&ranked(&[("I/O Saturation", 0.9), ("DB Backup", 0.4)])) {
            Decision::Act { action, dry_run } => {
                assert_eq!(action.cause, "I/O Saturation");
                assert!(dry_run);
            }
            other => panic!("expected Act, got {other:?}"),
        }
        // Low confidence: escalate.
        assert!(matches!(
            policy.decide(&ranked(&[("I/O Saturation", 0.5)])),
            Decision::Escalate { .. }
        ));
        // Ambiguous margin: escalate.
        assert!(matches!(
            policy.decide(&ranked(&[("I/O Saturation", 0.9), ("DB Backup", 0.85)])),
            Decision::Escalate { .. }
        ));
        // Unknown cause: escalate.
        assert!(matches!(
            policy.decide(&ranked(&[("Mystery", 0.99), ("DB Backup", 0.2)])),
            Decision::Escalate { .. }
        ));
        // Empty ranking: escalate.
        assert!(matches!(policy.decide(&[]), Decision::Escalate { .. }));
    }

    #[test]
    fn armed_policy_is_not_dry_run() {
        let policy = AutoRemediationPolicy::default().with_action("x", "do it").armed();
        match policy.decide(&ranked(&[("x", 0.95)])) {
            Decision::Act { dry_run, .. } => assert!(!dry_run),
            other => panic!("expected Act, got {other:?}"),
        }
    }
}
