//! Row-wise reference implementations of the diagnosis kernels.
//!
//! This is the pre-columnar hot path, preserved verbatim as an executable
//! specification: every kernel walks the dataset cell by cell through
//! [`Dataset::value`], paying the column-enum dispatch per row that the
//! columnar kernels in [`label`](crate::label), [`predicate`](crate::predicate),
//! [`separation`](crate::separation), and [`generate`](crate::generate)
//! hoist out of their loops. The columnar rewrite is required to be
//! **bit-identical** to this module on valid inputs — the determinism
//! proptests diff the two paths, and the scaling benchmark
//! (`columnar_scaling`) uses this module as its scalar baseline.
//!
//! Compiled only for tests and under the `scalar-shim` feature; production
//! builds carry no row-wise code.

#![allow(deprecated)] // the whole point of this module is per-cell `value()`

use dbsherlock_telemetry::{AttributeKind, Dataset, Region, Value};

use crate::causal::{CausalModel, ModelRepository, RankedCause};
use crate::extract::{extract_categorical, extract_numeric};
use crate::fill::fill_gaps;
use crate::filter::filter_partitions;
use crate::generate::{AblationFlags, GeneratedPredicate};
use crate::params::SherlockParams;
use crate::partition::{PartitionLabel, PartitionSpace};
use crate::predicate::Predicate;
use crate::separation::partition_satisfies;

/// Row-wise [`Predicate::matches_row`]: one `value()` dispatch (and, for
/// categorical attributes, one dictionary lookup) per call.
pub fn matches_row(predicate: &Predicate, dataset: &Dataset, row: usize) -> bool {
    let Some(attr_id) = dataset.schema().id_of(&predicate.attr) else {
        return false;
    };
    if row >= dataset.n_rows() {
        return false;
    }
    match dataset.value(row, attr_id) {
        Value::Num(v) => predicate.op.matches_num(v),
        Value::Cat(id) => {
            let Ok((_, dict)) = dataset.categorical(attr_id) else {
                return false;
            };
            dict.label(id).map(|l| predicate.op.matches_label(l)).unwrap_or(false)
        }
    }
}

/// Row-wise [`Predicate::selectivity`]: one [`matches_row`] per row, with
/// the attribute re-resolved every time.
pub fn selectivity(predicate: &Predicate, dataset: &Dataset, rows: &[usize]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let hits = rows.iter().filter(|&&r| matches_row(predicate, dataset, r)).count();
    hits as f64 / rows.len() as f64
}

/// Row-wise Eq. 1: two independent selectivity passes.
pub fn separation_power(
    predicate: &Predicate,
    dataset: &Dataset,
    abnormal: &Region,
    normal: &Region,
) -> f64 {
    selectivity(predicate, dataset, abnormal.indices())
        - selectivity(predicate, dataset, normal.indices())
}

/// Row-wise §4.2 labeling: one `value()` dispatch per (region row), then
/// the same purity/majority fold as the columnar kernel.
pub fn label_partitions(
    dataset: &Dataset,
    attr_id: usize,
    space: &PartitionSpace,
    abnormal: &Region,
    normal: &Region,
) -> Vec<PartitionLabel> {
    let partition_of = |row: usize| -> Option<usize> {
        if row >= dataset.n_rows() || attr_id >= dataset.schema().len() {
            return None;
        }
        match (space, dataset.value(row, attr_id)) {
            (PartitionSpace::Numeric { .. }, Value::Num(v)) => space.index_of_num(v),
            (PartitionSpace::Categorical { .. }, Value::Cat(id)) => {
                ((id as usize) < space.len()).then_some(id as usize)
            }
            _ => None,
        }
    };
    let mut abnormal_hits = vec![0usize; space.len()];
    let mut normal_hits = vec![0usize; space.len()];
    for &row in abnormal.indices() {
        if let Some(hits) = partition_of(row).and_then(|j| abnormal_hits.get_mut(j)) {
            *hits += 1;
        }
    }
    for &row in normal.indices() {
        if let Some(hits) = partition_of(row).and_then(|j| normal_hits.get_mut(j)) {
            *hits += 1;
        }
    }
    abnormal_hits
        .iter()
        .zip(&normal_hits)
        .map(|(&a, &n)| match space {
            // Purity rule: any mix demotes to Empty.
            PartitionSpace::Numeric { .. } => match (a, n) {
                (0, 0) => PartitionLabel::Empty,
                (_, 0) => PartitionLabel::Abnormal,
                (0, _) => PartitionLabel::Normal,
                _ => PartitionLabel::Empty,
            },
            // Majority rule: ties (including 0-0) are Empty.
            PartitionSpace::Categorical { .. } => match a.cmp(&n) {
                std::cmp::Ordering::Greater => PartitionLabel::Abnormal,
                std::cmp::Ordering::Less => PartitionLabel::Normal,
                std::cmp::Ordering::Equal => PartitionLabel::Empty,
            },
        })
        .collect()
}

/// Row-wise partition-space separation power (one Eq. 3 term): one
/// [`partition_satisfies`] call — a midpoint test or a dictionary lookup —
/// per labeled partition.
pub fn partition_separation_power(
    predicate: &Predicate,
    space: &PartitionSpace,
    labels: &[PartitionLabel],
    dataset: &Dataset,
    attr_id: usize,
) -> f64 {
    let mut abnormal_total = 0usize;
    let mut abnormal_hits = 0usize;
    let mut normal_total = 0usize;
    let mut normal_hits = 0usize;
    for (j, &label) in labels.iter().enumerate() {
        let sat = partition_satisfies(predicate, space, dataset, attr_id, j);
        match label {
            PartitionLabel::Abnormal => {
                abnormal_total += 1;
                if sat {
                    abnormal_hits += 1;
                }
            }
            PartitionLabel::Normal => {
                normal_total += 1;
                if sat {
                    normal_hits += 1;
                }
            }
            PartitionLabel::Empty => {}
        }
    }
    let ratio = |hits: usize, total: usize| {
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    };
    ratio(abnormal_hits, abnormal_total) - ratio(normal_hits, normal_total)
}

/// Buffered Eq. 2: collect the normalized finite values of each region
/// into an intermediate vector, then take its mean (the columnar kernel
/// fuses the normalize-and-sum; the summation order is identical).
pub fn normalized_mean_difference(
    dataset: &Dataset,
    attr_id: usize,
    abnormal: &Region,
    normal: &Region,
) -> Option<f64> {
    let (min, max) = dataset.numeric_range(attr_id).ok()?;
    let mean_of = |region: &Region| -> Option<f64> {
        let values: Vec<f64> = region
            .indices()
            .iter()
            .filter_map(|&r| {
                if r >= dataset.n_rows() {
                    return None;
                }
                dataset.value(r, attr_id).as_num()
            })
            .filter(|v| v.is_finite())
            .map(|v| dbsherlock_telemetry::stats::normalize(v, min, max))
            .collect();
        if values.is_empty() {
            None
        } else {
            Some(dbsherlock_telemetry::stats::mean(&values))
        }
    };
    let a = mean_of(abnormal)?;
    let n = mean_of(normal)?;
    Some((a - n).abs())
}

/// Row-wise Algorithm 1: a serial loop over the schema, each attribute
/// partitioned, labeled, filtered, filled, and extracted through the
/// per-cell kernels above. Gate order matches the columnar
/// `extract_for_attribute` exactly.
pub fn generate_predicates(
    dataset: &Dataset,
    abnormal: &Region,
    normal: &Region,
    params: &SherlockParams,
) -> Vec<GeneratedPredicate> {
    generate_predicates_ablated(dataset, abnormal, normal, params, AblationFlags::default())
}

/// [`generate_predicates`] with pipeline steps disabled.
pub fn generate_predicates_ablated(
    dataset: &Dataset,
    abnormal: &Region,
    normal: &Region,
    params: &SherlockParams,
    ablation: AblationFlags,
) -> Vec<GeneratedPredicate> {
    let abnormal = &abnormal.clip(dataset.n_rows());
    let normal = &normal.clip(dataset.n_rows());
    if abnormal.is_empty() || normal.is_empty() {
        return Vec::new();
    }
    dataset
        .schema()
        .iter()
        .filter_map(|(attr_id, attr)| {
            let space = PartitionSpace::build(dataset, attr_id, params.n_partitions)?;
            let labels = label_partitions(dataset, attr_id, &space, abnormal, normal);
            match attr.kind {
                AttributeKind::Numeric => {
                    let filtered =
                        if ablation.skip_filtering { labels } else { filter_partitions(&labels) };
                    let filled = if ablation.skip_filling {
                        filtered
                    } else {
                        fill_gaps(&filtered, params.delta, dataset, attr_id, &space, normal)
                    };
                    let d = normalized_mean_difference(dataset, attr_id, abnormal, normal)?;
                    if d <= params.theta {
                        return None;
                    }
                    let predicate = extract_numeric(&attr.name, &space, &filled)?;
                    let sp = separation_power(&predicate, dataset, abnormal, normal);
                    (sp >= params.min_separation_power).then_some(GeneratedPredicate {
                        predicate,
                        separation_power: sp,
                        normalized_diff: d,
                    })
                }
                AttributeKind::Categorical => {
                    let predicate = extract_categorical(&attr.name, dataset, attr_id, &labels)?;
                    let sp = separation_power(&predicate, dataset, abnormal, normal);
                    (sp >= params.min_separation_power).then_some(GeneratedPredicate {
                        predicate,
                        separation_power: sp,
                        normalized_diff: 1.0,
                    })
                }
            }
        })
        .collect()
}

/// Row-wise Eq. 3: each predicate rebuilds and relabels its attribute's
/// partition space from scratch (no per-ranking cache).
pub fn confidence(
    model: &CausalModel,
    dataset: &Dataset,
    abnormal: &Region,
    normal: &Region,
    params: &SherlockParams,
) -> f64 {
    // Keep the chaos tripwire so crash-torture comparisons see identical
    // panics on both paths.
    #[cfg(any(test, feature = "chaos"))]
    crate::chaos::scorer_tripwire(&model.cause, dataset);
    if model.predicates.is_empty() {
        return 0.0;
    }
    let total: f64 = model
        .predicates
        .iter()
        .map(|pred| {
            let Some(attr_id) = dataset.schema().id_of(&pred.attr) else {
                return 0.0;
            };
            let Some(space) = PartitionSpace::build(dataset, attr_id, params.n_partitions) else {
                return 0.0;
            };
            let labels = label_partitions(dataset, attr_id, &space, abnormal, normal);
            partition_separation_power(pred, &space, &labels, dataset, attr_id)
        })
        .sum();
    total / model.predicates.len() as f64
}

/// Row-wise model's predicted region: a per-row conjunction of
/// [`matches_row`] calls.
pub fn predicted_region(model: &CausalModel, dataset: &Dataset) -> Region {
    if model.predicates.is_empty() {
        return Region::new();
    }
    Region::from_indices(
        (0..dataset.n_rows())
            .filter(|&row| model.predicates.iter().all(|p| matches_row(p, dataset, row))),
    )
}

/// Row-wise ranking: a serial loop of uncached [`confidence`] calls, with
/// the same decreasing-confidence / cause-name tie-break order.
pub fn rank(
    repository: &ModelRepository,
    dataset: &Dataset,
    abnormal: &Region,
    normal: &Region,
    params: &SherlockParams,
) -> Vec<RankedCause> {
    let mut ranked: Vec<RankedCause> = repository
        .models()
        .iter()
        .map(|m| RankedCause {
            cause: m.cause.clone(),
            confidence: confidence(m, dataset, abnormal, normal, params),
        })
        .collect();
    ranked
        .sort_by(|a, b| b.confidence.total_cmp(&a.confidence).then_with(|| a.cause.cmp(&b.cause)));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsherlock_telemetry::{AttributeMeta, Schema};

    fn dataset() -> (Dataset, Region, Region) {
        let schema = Schema::from_attrs([
            AttributeMeta::numeric("signal"),
            AttributeMeta::categorical("state"),
        ])
        .unwrap();
        let mut d = Dataset::new(schema);
        for i in 0..40 {
            let abnormal = (20..30).contains(&i);
            let signal = if abnormal { 90.0 + (i % 3) as f64 } else { 10.0 + (i % 5) as f64 };
            let state = d.intern(1, if abnormal { "bad" } else { "ok" }).unwrap();
            d.push_row(i as f64, &[Value::Num(signal), state]).unwrap();
        }
        let abnormal = Region::from_range(20..30);
        let normal = abnormal.complement(40);
        (d, abnormal, normal)
    }

    #[test]
    fn scalar_generate_matches_columnar() {
        let (d, abnormal, normal) = dataset();
        let params = SherlockParams::default();
        let scalar = generate_predicates(&d, &abnormal, &normal, &params);
        let columnar = crate::generate::generate_predicates(&d, &abnormal, &normal, &params);
        assert_eq!(scalar, columnar);
        assert!(!scalar.is_empty());
    }

    #[test]
    fn scalar_separation_matches_columnar() {
        let (d, abnormal, normal) = dataset();
        for p in [
            Predicate::gt("signal", 50.0),
            Predicate::lt("signal", 50.0),
            Predicate::between("signal", 5.0, 40.0),
            Predicate::in_set("state", ["bad".to_string()]),
            Predicate::gt("missing", 0.0),
        ] {
            let scalar = separation_power(&p, &d, &abnormal, &normal);
            let columnar = crate::separation::separation_power(&p, &d, &abnormal, &normal);
            assert_eq!(scalar.to_bits(), columnar.to_bits(), "{p}");
        }
    }

    #[test]
    fn scalar_rank_matches_columnar() {
        let (d, abnormal, normal) = dataset();
        let params = SherlockParams::default();
        let mut repo = ModelRepository::new();
        repo.add(CausalModel {
            cause: "hot".into(),
            predicates: vec![Predicate::gt("signal", 50.0)],
            merged_from: 1,
        });
        repo.add(CausalModel {
            cause: "cold".into(),
            predicates: vec![Predicate::lt("signal", 50.0)],
            merged_from: 1,
        });
        let scalar = rank(&repo, &d, &abnormal, &normal, &params);
        let columnar = repo.rank(&d, &abnormal, &normal, &params);
        assert_eq!(scalar, columnar);
    }

    #[test]
    fn scalar_predicted_region_matches_columnar() {
        let (d, _, _) = dataset();
        let m = CausalModel {
            cause: "hot".into(),
            predicates: vec![
                Predicate::gt("signal", 50.0),
                Predicate::in_set("state", ["bad".to_string()]),
            ],
            merged_from: 1,
        };
        assert_eq!(predicted_region(&m, &d), m.predicted_region(&d));
    }
}
