//! Property tests for the crash-safe model store: for an *arbitrary*
//! repository and an *arbitrary* fault position, a corrupted primary must
//! never crash the loader, never surface garbage, and always recover the
//! previous good generation when one exists.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use dbsherlock_core::{CausalModel, ModelRepository, ModelStore, Predicate, StoreFault};
use proptest::prelude::*;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A scratch directory unique to this proptest case (cases run in sequence,
/// but the suite runs in parallel with other test binaries).
fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sherlock-store-props-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn repo_from(causes: &[(String, f64)]) -> ModelRepository {
    let mut repo = ModelRepository::new();
    for (cause, threshold) in causes {
        repo.add(CausalModel {
            cause: cause.clone(),
            predicates: vec![Predicate::gt("cpu", *threshold)],
            merged_from: 1,
        });
    }
    repo
}

/// Structural fingerprint for equality (the repository does not implement
/// `PartialEq`; its JSON form is canonical enough).
fn fingerprint(repo: &ModelRepository) -> String {
    serde_json::to_string(repo).unwrap()
}

proptest! {
    /// Arbitrary repository -> save -> load is the identity.
    #[test]
    fn round_trip_is_identity(
        causes in proptest::collection::vec(("[a-z]{1,12}", 0.0_f64..100.0), 1..6),
    ) {
        let dir = scratch_dir();
        let store = ModelStore::new(dir.join("models.bin"));
        let repo = repo_from(&causes);
        store.save(&repo).unwrap();
        let (loaded, report) = store.load().unwrap();
        prop_assert_eq!(fingerprint(&loaded), fingerprint(&repo));
        prop_assert_eq!(report.generation, 1);
        prop_assert!(report.warnings.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Arbitrary repository -> two generations -> truncate the primary at
    /// an arbitrary byte -> load recovers the prior generation, bit for
    /// bit, with the torn file quarantined (or, at zero length, recognised
    /// as a torn create).
    #[test]
    fn truncation_at_any_byte_recovers_the_prior_generation(
        causes in proptest::collection::vec(("[a-z]{1,12}", 0.0_f64..100.0), 1..6),
        extra_cause in "[A-Z]{4,10}",
        cut_frac in 0.0_f64..1.0,
    ) {
        let dir = scratch_dir();
        let store = ModelStore::new(dir.join("models.bin"));
        let prior = repo_from(&causes);
        store.save(&prior).unwrap();
        let mut newer = causes.clone();
        newer.push((extra_cause, 7.0));
        store.save(&repo_from(&newer)).unwrap();

        let full = fs::read(store.path()).unwrap();
        // Always a *proper* truncation: at least one byte missing.
        let cut = ((cut_frac * full.len() as f64) as usize).min(full.len() - 1);
        StoreFault::TruncateAt(cut).apply(store.path()).unwrap();

        let (recovered, report) = store.load().unwrap();
        prop_assert!(report.recovered_from_backup, "cut={} report={:?}", cut, report);
        prop_assert_eq!(report.generation, 1);
        prop_assert_eq!(fingerprint(&recovered), fingerprint(&prior));
        if cut == 0 {
            prop_assert!(report.quarantined.is_empty());
        } else {
            prop_assert_eq!(report.quarantined.len(), 1);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Same contract for a bit flip at an arbitrary position.
    #[test]
    fn bit_flip_at_any_byte_recovers_the_prior_generation(
        causes in proptest::collection::vec(("[a-z]{1,12}", 0.0_f64..100.0), 1..6),
        byte_frac in 0.0_f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = scratch_dir();
        let store = ModelStore::new(dir.join("models.bin"));
        let prior = repo_from(&causes);
        store.save(&prior).unwrap();
        let mut newer = causes.clone();
        newer.push(("flipped".to_string(), 7.0));
        store.save(&repo_from(&newer)).unwrap();

        let full = fs::read(store.path()).unwrap();
        let byte = ((byte_frac * full.len() as f64) as usize).min(full.len() - 1);
        StoreFault::FlipBit { byte, bit }.apply(store.path()).unwrap();

        let (recovered, report) = store.load().unwrap();
        prop_assert!(report.recovered_from_backup, "byte={} report={:?}", byte, report);
        prop_assert_eq!(fingerprint(&recovered), fingerprint(&prior));
        let _ = fs::remove_dir_all(&dir);
    }
}
