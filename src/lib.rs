#![warn(missing_docs)]
// Diagnosis must degrade gracefully, never panic: unwrap/expect are banned in
// library code (tests may use them freely). See sherlock-lint's panic-path rule.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # dbsherlock
//!
//! A from-scratch Rust reproduction of **"DBSherlock: A Performance
//! Diagnostic Tool for Transactional Databases"** (Yoon, Niu, Mozafari —
//! SIGMOD 2016): a framework that explains user-perceived performance
//! anomalies in OLTP databases as concise predicates over telemetry and as
//! ranked, human-readable causes backed by causal models.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`telemetry`] — typed attributes, aligned tuples, regions, CSV, raw
//!   log alignment (the DBSeer-style preprocessing substrate).
//! * [`simulator`] — a closed-loop OLTP server simulator with the ten
//!   injectable anomaly classes of the paper's Table 1 (the stand-in for
//!   the paper's MySQL-on-Azure testbed).
//! * [`core`] — the DBSherlock algorithm itself: predicate generation,
//!   domain-knowledge pruning, causal models and merging, automatic
//!   anomaly detection.
//! * [`cluster`] — DBSCAN + k-dist, used by the automatic detector.
//! * [`baselines`] — PerfXplain and PerfAugur re-implementations.
//! * [`causal_synth`] — synthetic linear-SEM ground truth (Appendix F).
//!
//! # Quickstart
//!
//! ```
//! use dbsherlock::prelude::*;
//!
//! // Simulate a two-minute TPC-C-like run with a CPU hog in the middle.
//! let labeled = Scenario::new(WorkloadConfig::tpcc_default(), 150, 42)
//!     .with_injection(Injection::new(AnomalyKind::CpuSaturation, 60, 40))
//!     .run();
//!
//! // The DBA marks seconds 60..100 as abnormal and asks for an explanation.
//! let mut sherlock = Sherlock::new(SherlockParams::default());
//! let region = Region::from_range(60..100);
//! let explanation = sherlock.explain(&labeled.data, &region, None);
//! assert!(!explanation.predicates.is_empty());
//!
//! // The DBA confirms the cause; future diagnoses will name it directly.
//! sherlock.feedback("stress-ng CPU hog", &explanation.predicates);
//! let again = sherlock.explain(&labeled.data, &region, None);
//! assert_eq!(again.top_cause().unwrap().cause, "stress-ng CPU hog");
//! ```
//!
//! Heavy traffic goes through the validating builder and the batch entry
//! point, which fans independent cases out across a thread pool with
//! bit-identical results at any thread count:
//!
//! ```
//! use dbsherlock::prelude::*;
//! # let labeled = Scenario::new(WorkloadConfig::tpcc_default(), 150, 42)
//! #     .with_injection(Injection::new(AnomalyKind::CpuSaturation, 60, 40))
//! #     .run();
//! # let region = Region::from_range(60..100);
//!
//! let params = SherlockParams::builder()
//!     .theta(0.05)
//!     .exec(ExecPolicy::Threads(4))
//!     .build()?;
//! let sherlock = Sherlock::new(params);
//! let cases = [Case::new(&labeled.data, &region)];
//! for result in sherlock.explain_batch(&cases) {
//!     let explanation = result?;
//!     assert!(!explanation.predicates.is_empty());
//! }
//! # Ok::<(), dbsherlock::core::SherlockError>(())
//! ```

pub use dbsherlock_baselines as baselines;
pub use dbsherlock_causal_synth as causal_synth;
pub use dbsherlock_cluster as cluster;
pub use dbsherlock_core as core;
pub use dbsherlock_simulator as simulator;
pub use dbsherlock_telemetry as telemetry;

/// The names most programs need, in one import.
pub mod prelude {
    pub use dbsherlock_core::{
        generate_predicates, Accuracy, CancelFlag, Case, CausalModel, DiagnosisBudget,
        DomainKnowledge, ExecPolicy, Explanation, GeneratedPredicate, ModelRepository, ModelStore,
        Predicate, PredicateOp, RankedCause, Rule, Sherlock, SherlockError, SherlockParams,
        SherlockParamsBuilder, StoreReport,
    };
    pub use dbsherlock_simulator::{
        AnomalyKind, Benchmark, Injection, LabeledDataset, NoiseModel, Scenario, ServerConfig,
        WorkloadConfig,
    };
    pub use dbsherlock_telemetry::{
        AttributeKind, AttributeMeta, CategoricalView, ColumnView, ColumnarSnapshot, Dataset,
        NumericView, Region, Schema, Value,
    };
}
