//! `dbsherlock-cli` — command-line front end for the DBSherlock library.
//!
//! The workflow of the paper's Fig. 2, driven from a shell: simulate or
//! import telemetry CSVs, plot metrics, explain user-selected anomaly
//! regions, detect regions automatically, and maintain a persistent causal
//! model repository across sessions.
//!
//! ```text
//! dbsherlock-cli simulate --kind "I/O Saturation" --out incident.csv
//! dbsherlock-cli plot incident.csv txn_avg_latency_ms --region 60..110
//! dbsherlock-cli explain incident.csv --abnormal 60..110 --models repo.json
//! dbsherlock-cli feedback incident.csv --abnormal 60..110 \
//!     --cause "external I/O hog" --models repo.json
//! dbsherlock-cli detect incident.csv
//! ```

use std::process::ExitCode;

use dbsherlock::core::{ArgScan, ModelRepository, ModelStore, Sherlock, SherlockParams};
use dbsherlock::prelude::*;
use dbsherlock::telemetry::{from_csv, from_csv_lossy, render_plot, to_csv, PlotOptions};

/// CLI failures, each with its own exit code so scripts can tell *what*
/// failed: bad invocation (1), unreadable/unparseable input (2), or a
/// diagnosis that could not produce a result (3).
#[derive(Debug)]
enum CliError {
    /// Wrong arguments; usage is printed.
    Usage(String),
    /// Input could not be read or parsed.
    Parse(String),
    /// Inputs were fine but the diagnosis step failed.
    Diagnosis(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 1,
            CliError::Parse(_) => 2,
            CliError::Diagnosis(_) => 3,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Parse(m) | CliError::Diagnosis(m) => m,
        }
    }
}

/// Usage errors from plain strings.
impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Usage(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError::Usage(message.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("error: {}", error.message());
            if matches!(error, CliError::Usage(_)) {
                eprintln!();
                eprintln!("{USAGE}");
            }
            ExitCode::from(error.exit_code())
        }
    }
}

const USAGE: &str = "\
usage: dbsherlock-cli <command> [options]

commands:
  simulate --kind <anomaly> --out <csv> [--duration N] [--start N] [--len N] [--seed N]
           generate a labeled incident with the built-in OLTP simulator
           (anomaly names as in Table 1, e.g. \"CPU Saturation\")
  plot <csv> <attribute> [--region A..B]
           render an ASCII plot of one metric, optionally highlighting a region
  explain <csv> --abnormal A..B [--normal C..D] [--models <json>] [--theta X]
           generate predicates (and ranked causes, when models are loaded)
  feedback <csv> --abnormal A..B --cause <name> --models <json> [--theta X]
           confirm a diagnosis: store/merge the causal model into the repository
  detect <csv>
           propose an abnormal region automatically (potential power + DBSCAN)
  anomalies
           list the ten built-in anomaly classes

options:
  --strict fail on the first malformed CSV cell instead of repairing it
           (by default, damaged telemetry is salvaged and each repair is
           reported on stderr as `warning: ...`)
  --threads <N|serial|auto>
           thread budget for the diagnosis pipeline (default: auto)
  --deadline-ms <N>
           wall-clock budget for one diagnosis; a blown deadline fails with
           exit code 3 instead of hanging (default: unlimited)
  --max-rows <N> / --max-partitions <N>
           reject oversized diagnoses up front instead of starting them

model repository files are stored as checksummed, crash-safe records: every
save keeps the previous generation as <path>.prev, and a torn or corrupt
file is quarantined as <path>.corrupt-<n> and recovered from the backup.
Pre-existing raw-JSON repositories still load and are upgraded on the next
save.

exit codes:
  0 success   1 usage error   2 unreadable/unparseable input   3 diagnosis failure";

fn run(args: &[String]) -> Result<(), CliError> {
    let command = args.first().ok_or("missing command")?;
    // Shared scanner (also used by sherlockd): `--name value` options,
    // bare flags, leading positionals.
    let rest = ArgScan::new(&args[1..]);
    match command.as_str() {
        "simulate" => simulate(&rest),
        "plot" => plot(&rest),
        "explain" => explain(&rest),
        "feedback" => feedback(&rest),
        "detect" => detect(&rest),
        "anomalies" => {
            for kind in AnomalyKind::ALL {
                println!("{:24} {}", kind.name(), kind.description());
            }
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

/// Parse `A..B` into a region over a dataset of `n_rows` rows.
///
/// The start must land inside the dataset — a region that begins at or past
/// the last row can only come from a typo or a mismatched file, so it is a
/// usage error, not a silently-empty region. The end is clamped (asking for
/// "through row 500" of a 300-row file is a reasonable way to say "to the
/// end").
fn parse_region(spec: &str, n_rows: usize) -> Result<Region, CliError> {
    let (a, b) =
        spec.split_once("..").ok_or_else(|| format!("bad region {spec:?}; expected A..B"))?;
    let a: usize = a.trim().parse().map_err(|_| format!("bad region start {a:?}"))?;
    let b: usize = b.trim().parse().map_err(|_| format!("bad region end {b:?}"))?;
    if a >= b {
        return Err(format!("empty region {spec:?}").into());
    }
    if a >= n_rows {
        return Err(format!(
            "region {spec:?} starts at row {a}, but the dataset has only {n_rows} rows"
        )
        .into());
    }
    Ok(Region::from_range(a..b.min(n_rows)))
}

/// Load a telemetry CSV. Lossy by default: malformed cells and rows are
/// repaired or skipped, and each repair is reported on stderr. `--strict`
/// restores fail-fast parsing.
fn load_dataset(path: &str, strict: bool) -> Result<Dataset, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Parse(format!("cannot read {path}: {e}")))?;
    if strict {
        return from_csv(&text).map_err(|e| CliError::Parse(format!("cannot parse {path}: {e}")));
    }
    let (dataset, warnings) =
        from_csv_lossy(&text).map_err(|e| CliError::Parse(format!("cannot parse {path}: {e}")))?;
    for warning in &warnings {
        eprintln!("warning: {path}: {warning}");
    }
    if !warnings.is_empty() {
        eprintln!(
            "warning: {path}: {} ingest repair(s); rerun with --strict to fail fast",
            warnings.len()
        );
    }
    Ok(dataset)
}

/// Load the model repository through the crash-safe store: corrupt or torn
/// files are quarantined and the last good generation (or a fresh, empty
/// repository) takes over, with every degradation reported on stderr. Only
/// a real I/O failure aborts.
fn load_repository(path: &str) -> Result<ModelRepository, CliError> {
    let (repo, report) = ModelStore::new(path)
        .load()
        .map_err(|e| CliError::Parse(format!("cannot load model repository: {e}")))?;
    for warning in &report.warnings {
        eprintln!("warning: {warning}");
    }
    Ok(repo)
}

/// Persist the repository through the crash-safe store: checksummed record,
/// write-temp + fsync + atomic rename, previous generation kept as
/// `<path>.prev`.
fn save_repository(path: &str, repo: &ModelRepository) -> Result<(), CliError> {
    let report = ModelStore::new(path)
        .save(repo)
        .map_err(|e| CliError::Diagnosis(format!("cannot save model repository: {e}")))?;
    for warning in &report.warnings {
        eprintln!("warning: {warning}");
    }
    Ok(())
}

fn params_from(args: &ArgScan<'_>) -> Result<SherlockParams, CliError> {
    let mut builder = SherlockParams::builder();
    if let Some(theta) = args.parsed::<f64>("--theta")? {
        builder = builder.theta(theta);
    }
    if let Some(exec) = args.exec_policy()? {
        builder = builder.exec(exec);
    }
    if let Some(budget) = args.budget()? {
        builder = builder.budget(budget);
    }
    builder.build().map_err(|e| CliError::Usage(e.to_string()))
}

fn simulate(args: &ArgScan<'_>) -> Result<(), CliError> {
    let kind_name = args.option("--kind").ok_or("simulate requires --kind")?;
    let out = args.option("--out").ok_or("simulate requires --out")?;
    let kind = AnomalyKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(kind_name))
        .ok_or_else(|| format!("unknown anomaly {kind_name:?}; see `dbsherlock-cli anomalies`"))?;
    let duration: usize = args.parsed_or("--duration", 170)?;
    let start: usize = args.parsed_or("--start", 60)?;
    let len: usize = args.parsed_or("--len", 50)?;
    let seed: u64 = args.parsed_or("--seed", 42)?;

    let labeled = Scenario::new(WorkloadConfig::tpcc_default(), duration, seed)
        .with_injection(Injection::new(kind, start, len))
        .run();
    std::fs::write(out, to_csv(&labeled.data))
        .map_err(|e| CliError::Diagnosis(format!("cannot write {out}: {e}")))?;
    println!(
        "wrote {out}: {} seconds x {} attributes; injected {} over rows {:?}",
        labeled.data.n_rows(),
        labeled.data.schema().len(),
        kind.name(),
        labeled.abnormal_region().intervals(),
    );
    Ok(())
}

fn plot(args: &ArgScan<'_>) -> Result<(), CliError> {
    let path = args.positional(0).ok_or("plot requires a CSV path")?;
    let attr = args.positional(1).ok_or("plot requires an attribute name")?;
    let dataset = load_dataset(path, args.flag("--strict"))?;
    let region =
        args.option("--region").map(|spec| parse_region(spec, dataset.n_rows())).transpose()?;
    let text = render_plot(&dataset, attr, region.as_ref(), &PlotOptions::default())
        .map_err(|e| CliError::Diagnosis(e.to_string()))?;
    print!("{text}");
    Ok(())
}

fn explain(args: &ArgScan<'_>) -> Result<(), CliError> {
    let path = args.positional(0).ok_or("explain requires a CSV path")?;
    let dataset = load_dataset(path, args.flag("--strict"))?;
    let abnormal_spec = args.option("--abnormal").ok_or("explain requires --abnormal A..B")?;
    let abnormal = parse_region(abnormal_spec, dataset.n_rows())?;
    let normal =
        args.option("--normal").map(|spec| parse_region(spec, dataset.n_rows())).transpose()?;

    let mut sherlock =
        Sherlock::new(params_from(args)?).with_domain_knowledge(DomainKnowledge::mysql_linux());
    if let Some(models_path) = args.option("--models") {
        *sherlock.repository_mut() = load_repository(models_path)?;
    }
    let explanation = sherlock
        .try_explain(&dataset, &abnormal, normal.as_ref())
        .map_err(|e| CliError::Diagnosis(e.to_string()))?;
    println!("predicates ({}):", explanation.predicates.len());
    for generated in &explanation.predicates {
        println!("  {:<48} SP {:.2}", generated.predicate.to_string(), generated.separation_power);
    }
    if explanation.causes.is_empty() {
        if !sherlock.repository().models().is_empty() {
            println!("\nno stored cause above the confidence threshold");
        }
    } else {
        println!("\nlikely causes:");
        for cause in &explanation.causes {
            println!("  {:<32} confidence {:.0}%", cause.cause, cause.confidence * 100.0);
        }
    }
    Ok(())
}

fn feedback(args: &ArgScan<'_>) -> Result<(), CliError> {
    let path = args.positional(0).ok_or("feedback requires a CSV path")?;
    let dataset = load_dataset(path, args.flag("--strict"))?;
    let abnormal = parse_region(
        args.option("--abnormal").ok_or("feedback requires --abnormal")?,
        dataset.n_rows(),
    )?;
    let cause = args.option("--cause").ok_or("feedback requires --cause")?;
    let models_path = args.option("--models").ok_or("feedback requires --models")?;

    let mut sherlock = Sherlock::new(params_from(args)?);
    *sherlock.repository_mut() = load_repository(models_path)?;
    let explanation = sherlock.explain(&dataset, &abnormal, None);
    if explanation.predicates.is_empty() {
        return Err(CliError::Diagnosis(
            "no predicates could be generated for that region".to_string(),
        ));
    }
    sherlock.feedback(cause, &explanation.predicates);
    save_repository(models_path, sherlock.repository())?;
    let model = sherlock.repository().model_of(cause).expect("just added");
    println!(
        "stored causal model {:?}: {} predicates (merged from {} diagnoses)",
        cause,
        model.predicates.len(),
        model.merged_from
    );
    Ok(())
}

fn detect(args: &ArgScan<'_>) -> Result<(), CliError> {
    let path = args.positional(0).ok_or("detect requires a CSV path")?;
    let dataset = load_dataset(path, args.flag("--strict"))?;
    let sherlock = Sherlock::new(SherlockParams::default());
    match sherlock.detect(&dataset) {
        Some(detection) => {
            println!("proposed abnormal region: {:?}", detection.region.intervals());
            let names: Vec<&str> = detection
                .selected_attrs
                .iter()
                .take(8)
                .map(|&id| dataset.schema().attr(id).name.as_str())
                .collect();
            println!(
                "driven by {} attributes with high potential power, e.g. {names:?}",
                detection.selected_attrs.len()
            );
        }
        None => println!("nothing anomalous detected"),
    }
    Ok(())
}
