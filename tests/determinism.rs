//! Determinism suite: the parallel execution layer must be invisible in the
//! output. `explain` under `ExecPolicy::Serial` and `ExecPolicy::Threads(4)`
//! must produce bit-identical predicates, ranking, and confidences on
//! arbitrary data, and `explain_batch` must return results in case order.

use dbsherlock::prelude::*;
use proptest::prelude::*;

/// A three-attribute dataset with a level shift of pseudo-random magnitude
/// in a pseudo-random window. The deterministic "wiggle" keeps values
/// distinct without needing an RNG inside the property.
fn dataset_from(base: f64, jump: f64, shift_at: usize, seedish: u64) -> (Dataset, Region) {
    let schema = Schema::from_attrs([
        AttributeMeta::numeric("shifty"),
        AttributeMeta::numeric("drifty"),
        AttributeMeta::numeric("steady"),
    ])
    .unwrap();
    let mut d = Dataset::new(schema);
    let shift = shift_at..(shift_at + 20);
    for i in 0..100usize {
        let wiggle = (((i as u64).wrapping_mul(37).wrapping_add(seedish)) % 23) as f64 / 23.0;
        let shifty = if shift.contains(&i) { base * jump } else { base } + wiggle;
        let drifty = base + i as f64 * 0.01 + wiggle * 0.5;
        let steady = 42.0 + wiggle;
        d.push_row(i as f64, &[Value::Num(shifty), Value::Num(drifty), Value::Num(steady)])
            .unwrap();
    }
    (d, Region::from_indices(shift))
}

/// An engine with enough stored models for ranking to matter, at the given
/// execution policy.
fn engine(exec: ExecPolicy, d: &Dataset, abnormal: &Region) -> Sherlock {
    let params = SherlockParams::builder().exec(exec).build().unwrap();
    let mut sherlock = Sherlock::new(params);
    let explanation = sherlock.explain(d, abnormal, None);
    sherlock.feedback("true cause", &explanation.predicates);
    sherlock.feedback("same predicates, later name", &explanation.predicates);
    sherlock.feedback("also tied", &explanation.predicates);
    sherlock
}

/// Ranked causes with bit-exact confidences: `(cause, confidence.to_bits())`.
type CauseBits = Vec<(String, u64)>;

/// Everything observable about an explanation, bit-exact (confidences via
/// `to_bits`, so `-0.0` vs `0.0` or any ULP drift would be caught).
fn observe(e: &Explanation) -> (String, CauseBits, CauseBits) {
    let bits = |causes: &[RankedCause]| {
        causes.iter().map(|c| (c.cause.clone(), c.confidence.to_bits())).collect::<Vec<_>>()
    };
    (e.predicates_display(), bits(&e.causes), bits(&e.all_causes))
}

/// Mixed-kind dataset for the columnar/scalar parity properties: a clean
/// shifting attribute, a NaN-salted noisy attribute, and a categorical
/// attribute that leans "bad" inside the shift window (so numeric,
/// non-finite, and dictionary code paths are all on the diffed path).
fn mixed_dataset_from(
    base: f64,
    jump: f64,
    shift_at: usize,
    seedish: u64,
    nan_every: usize,
) -> (Dataset, Region) {
    let schema = Schema::from_attrs([
        AttributeMeta::numeric("shifty"),
        AttributeMeta::numeric("noisy"),
        AttributeMeta::categorical("state"),
    ])
    .unwrap();
    let mut d = Dataset::new(schema);
    let shift = shift_at..(shift_at + 20);
    for i in 0..100usize {
        let wiggle = (((i as u64).wrapping_mul(37).wrapping_add(seedish)) % 23) as f64 / 23.0;
        let shifty = if shift.contains(&i) { base * jump } else { base } + wiggle;
        let noisy = if i % nan_every == 0 { f64::NAN } else { base + wiggle * 3.0 };
        let label = if shift.contains(&i) && i % 4 != 0 { "bad" } else { "ok" };
        let state = d.intern(2, label).unwrap();
        d.push_row(i as f64, &[Value::Num(shifty), Value::Num(noisy), state]).unwrap();
    }
    (d, Region::from_indices(shift))
}

/// Like [`dataset_from`], but the schema carries the in-band chaos trigger
/// [`dbsherlock::core::chaos::PANIC_ATTR`], so scoring any causal model
/// against the dataset panics inside the real rank stage — poisoning the
/// whole case.
fn poisoned_dataset_from(base: f64, jump: f64, shift_at: usize, seedish: u64) -> Dataset {
    let schema = Schema::from_attrs([
        AttributeMeta::numeric("shifty"),
        AttributeMeta::numeric(dbsherlock::core::chaos::PANIC_ATTR),
    ])
    .unwrap();
    let mut d = Dataset::new(schema);
    let shift = shift_at..(shift_at + 20);
    for i in 0..100usize {
        let wiggle = (((i as u64).wrapping_mul(37).wrapping_add(seedish)) % 23) as f64 / 23.0;
        let shifty = if shift.contains(&i) { base * jump } else { base } + wiggle;
        d.push_row(i as f64, &[Value::Num(shifty), Value::Num(1.0)]).unwrap();
    }
    d
}

proptest! {
    /// ISSUE 4 acceptance: a panicking case in `explain_batch` returns a
    /// per-slot error while all other cases produce bit-identical results
    /// to a clean serial run — for an arbitrary poison pattern.
    #[test]
    fn poisoned_cases_are_isolated_and_neighbours_stay_bit_identical(
        base in 1.0_f64..100.0,
        jump in 2.0_f64..10.0,
        seedish in 0u64..1000,
        poison_mask in 1u8..=255,
    ) {
        let poisoned_at = |i: usize| poison_mask & (1 << i) != 0;
        let built: Vec<(Dataset, Region)> = (0..8)
            .map(|i| {
                let (clean, region) = dataset_from(base, jump, 15 + 8 * i, seedish + i as u64);
                if poisoned_at(i) {
                    (poisoned_dataset_from(base, jump, 15 + 8 * i, seedish + i as u64), region)
                } else {
                    (clean, region)
                }
            })
            .collect();
        let cases: Vec<Case<'_>> = built.iter().map(|(d, r)| Case::new(d, r)).collect();

        // Both engines trained on the same clean dataset -> identical models.
        let (train_d, train_r) = dataset_from(base, jump, 40, seedish);
        let threaded = engine(ExecPolicy::Threads(4), &train_d, &train_r);
        let serial = engine(ExecPolicy::Serial, &train_d, &train_r);

        // The chaos panics are caught per slot; keep the default hook from
        // spamming stderr while they fire. `quiet_panics` serialises the
        // hook swap against other tests on parallel threads.
        let batch = dbsherlock::core::chaos::quiet_panics(|| threaded.explain_batch(&cases));

        for (i, result) in batch.iter().enumerate() {
            if poisoned_at(i) {
                prop_assert!(
                    matches!(result, Err(SherlockError::TaskPanicked { stage: "rank", .. })),
                    "case {}: expected TaskPanicked, got {:?}", i, result
                );
            } else {
                let (d, r) = &built[i];
                let reference = serial.try_explain(d, r, None).unwrap();
                let got = result.as_ref().unwrap();
                prop_assert_eq!(observe(got), observe(&reference), "case {}", i);
            }
        }
    }

    /// Serial and 4-thread explains are bit-identical on random data.
    #[test]
    fn explain_is_identical_across_policies(
        base in 1.0_f64..100.0,
        jump in 2.0_f64..10.0,
        shift_at in 10usize..70,
        seedish in 0u64..1000,
    ) {
        let (d, abnormal) = dataset_from(base, jump, shift_at, seedish);
        let serial = engine(ExecPolicy::Serial, &d, &abnormal);
        let threaded = engine(ExecPolicy::Threads(4), &d, &abnormal);
        let a = serial.explain(&d, &abnormal, None);
        let b = threaded.explain(&d, &abnormal, None);
        prop_assert_eq!(observe(&a), observe(&b));
    }

    /// ISSUE 8 acceptance: the columnar kernels are bit-identical to the
    /// retained row-wise scalar shim — on random mixed-kind data with
    /// NaN-riddled columns, categorical columns, and regions that clip —
    /// at both `Serial` and `Threads(4)`.
    #[test]
    fn columnar_path_is_bit_identical_to_scalar_shim(
        base in 1.0_f64..100.0,
        jump in 2.0_f64..10.0,
        shift_at in 5usize..78,
        seedish in 0u64..1000,
        nan_every in 2usize..13,
        overhang in 0usize..40,
    ) {
        let (d, abnormal) = mixed_dataset_from(base, jump, shift_at, seedish, nan_every);
        // An abnormal region reaching past the dataset must clip the same
        // way on both paths.
        let abnormal = abnormal.union(&Region::from_range(100..100 + overhang));

        for exec in [ExecPolicy::Serial, ExecPolicy::Threads(4)] {
            let sherlock = engine(exec, &d, &abnormal);
            let columnar = sherlock.try_explain(&d, &abnormal, None).unwrap();
            let scalar = sherlock.explain_scalar(&d, &abnormal, None).unwrap();
            prop_assert_eq!(observe(&columnar), observe(&scalar), "exec {:?}", exec);
        }

        // Same at the generation layer, without the façade.
        let normal = abnormal.clip(100).complement(100);
        let params = SherlockParams::default();
        let columnar_preds =
            dbsherlock::core::generate_predicates(&d, &abnormal, &normal, &params);
        let scalar_preds =
            dbsherlock::core::scalar::generate_predicates(&d, &abnormal, &normal, &params);
        prop_assert_eq!(columnar_preds, scalar_preds);
    }

    /// Automatic detection is policy-independent too (potential power and
    /// the k-dist scan run on the pool).
    #[test]
    fn detect_is_identical_across_policies(
        base in 1.0_f64..100.0,
        jump in 3.0_f64..10.0,
        seedish in 0u64..1000,
    ) {
        let (d, _) = dataset_from(base, jump, 40, seedish);
        let serial = Sherlock::new(SherlockParams::default().with_exec(ExecPolicy::Serial));
        let threaded = Sherlock::new(SherlockParams::default().with_exec(ExecPolicy::Threads(4)));
        let a = serial.detect(&d);
        let b = threaded.detect(&d);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn scalar_and_columnar_agree_on_degenerate_regions() {
    let (d, abnormal) = mixed_dataset_from(10.0, 5.0, 30, 7, 5);
    let sherlock = engine(ExecPolicy::Serial, &d, &abnormal);
    // Empty abnormal region: both paths refuse identically.
    let empty = Region::new();
    assert!(matches!(
        sherlock.try_explain(&d, &empty, None),
        Err(SherlockError::EmptyRegion { what: "abnormal", .. })
    ));
    assert!(matches!(
        sherlock.explain_scalar(&d, &empty, None),
        Err(SherlockError::EmptyRegion { what: "abnormal", .. })
    ));
    // Abnormal covering every row: the implicit normal complement is empty
    // on both paths.
    let everything = Region::from_range(0..100);
    assert!(matches!(
        sherlock.try_explain(&d, &everything, None),
        Err(SherlockError::EmptyRegion { what: "normal", .. })
    ));
    assert!(matches!(
        sherlock.explain_scalar(&d, &everything, None),
        Err(SherlockError::EmptyRegion { what: "normal", .. })
    ));
    // At the generation layer an empty region yields no predicates, columnar
    // and scalar alike.
    let params = SherlockParams::default();
    assert!(dbsherlock::core::generate_predicates(&d, &empty, &everything, &params).is_empty());
    assert!(
        dbsherlock::core::scalar::generate_predicates(&d, &empty, &everything, &params).is_empty()
    );
}

#[test]
fn explain_batch_preserves_input_order() {
    // Distinguishable cases: each dataset shifts at a different row, so the
    // result at index `i` is attributable to the case at index `i`.
    let built: Vec<(Dataset, Region)> =
        (0..8).map(|i| dataset_from(10.0, 5.0, 15 + 8 * i, i as u64)).collect();
    let cases: Vec<Case<'_>> = built.iter().map(|(d, r)| Case::new(d, r)).collect();

    let sherlock = Sherlock::new(SherlockParams::default().with_exec(ExecPolicy::Threads(4)));
    let batch = sherlock.explain_batch(&cases);
    assert_eq!(batch.len(), cases.len());
    for ((d, r), result) in built.iter().zip(&batch) {
        let expected = sherlock.try_explain(d, r, None).unwrap();
        let got = result.as_ref().unwrap();
        assert_eq!(observe(got), observe(&expected));
    }
}

#[test]
fn explain_batch_equals_serial_loop_bit_for_bit() {
    let built: Vec<(Dataset, Region)> =
        (0..5).map(|i| dataset_from(20.0, 4.0, 20 + 10 * i, 99 + i as u64)).collect();
    let cases: Vec<Case<'_>> = built.iter().map(|(d, r)| Case::new(d, r)).collect();

    let serial = engine(ExecPolicy::Serial, &built[0].0, &built[0].1);
    let threaded = engine(ExecPolicy::Threads(4), &built[0].0, &built[0].1);

    let looped: Vec<_> = cases
        .iter()
        .map(|c| serial.try_explain(c.dataset, c.abnormal, c.normal).unwrap())
        .collect();
    let batched = threaded.explain_batch(&cases);
    for (a, b) in looped.iter().zip(&batched) {
        assert_eq!(observe(a), observe(b.as_ref().unwrap()));
    }
}
