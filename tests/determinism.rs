//! Determinism suite: the parallel execution layer must be invisible in the
//! output. `explain` under `ExecPolicy::Serial` and `ExecPolicy::Threads(4)`
//! must produce bit-identical predicates, ranking, and confidences on
//! arbitrary data, and `explain_batch` must return results in case order.

use dbsherlock::prelude::*;
use proptest::prelude::*;

/// A three-attribute dataset with a level shift of pseudo-random magnitude
/// in a pseudo-random window. The deterministic "wiggle" keeps values
/// distinct without needing an RNG inside the property.
fn dataset_from(base: f64, jump: f64, shift_at: usize, seedish: u64) -> (Dataset, Region) {
    let schema = Schema::from_attrs([
        AttributeMeta::numeric("shifty"),
        AttributeMeta::numeric("drifty"),
        AttributeMeta::numeric("steady"),
    ])
    .unwrap();
    let mut d = Dataset::new(schema);
    let shift = shift_at..(shift_at + 20);
    for i in 0..100usize {
        let wiggle = (((i as u64).wrapping_mul(37).wrapping_add(seedish)) % 23) as f64 / 23.0;
        let shifty = if shift.contains(&i) { base * jump } else { base } + wiggle;
        let drifty = base + i as f64 * 0.01 + wiggle * 0.5;
        let steady = 42.0 + wiggle;
        d.push_row(i as f64, &[Value::Num(shifty), Value::Num(drifty), Value::Num(steady)])
            .unwrap();
    }
    (d, Region::from_indices(shift))
}

/// An engine with enough stored models for ranking to matter, at the given
/// execution policy.
fn engine(exec: ExecPolicy, d: &Dataset, abnormal: &Region) -> Sherlock {
    let params = SherlockParams::builder().exec(exec).build().unwrap();
    let mut sherlock = Sherlock::new(params);
    let explanation = sherlock.explain(d, abnormal, None);
    sherlock.feedback("true cause", &explanation.predicates);
    sherlock.feedback("same predicates, later name", &explanation.predicates);
    sherlock.feedback("also tied", &explanation.predicates);
    sherlock
}

/// Ranked causes with bit-exact confidences: `(cause, confidence.to_bits())`.
type CauseBits = Vec<(String, u64)>;

/// Everything observable about an explanation, bit-exact (confidences via
/// `to_bits`, so `-0.0` vs `0.0` or any ULP drift would be caught).
fn observe(e: &Explanation) -> (String, CauseBits, CauseBits) {
    let bits = |causes: &[RankedCause]| {
        causes.iter().map(|c| (c.cause.clone(), c.confidence.to_bits())).collect::<Vec<_>>()
    };
    (e.predicates_display(), bits(&e.causes), bits(&e.all_causes))
}

/// Like [`dataset_from`], but the schema carries the in-band chaos trigger
/// [`dbsherlock::core::chaos::PANIC_ATTR`], so scoring any causal model
/// against the dataset panics inside the real rank stage — poisoning the
/// whole case.
fn poisoned_dataset_from(base: f64, jump: f64, shift_at: usize, seedish: u64) -> Dataset {
    let schema = Schema::from_attrs([
        AttributeMeta::numeric("shifty"),
        AttributeMeta::numeric(dbsherlock::core::chaos::PANIC_ATTR),
    ])
    .unwrap();
    let mut d = Dataset::new(schema);
    let shift = shift_at..(shift_at + 20);
    for i in 0..100usize {
        let wiggle = (((i as u64).wrapping_mul(37).wrapping_add(seedish)) % 23) as f64 / 23.0;
        let shifty = if shift.contains(&i) { base * jump } else { base } + wiggle;
        d.push_row(i as f64, &[Value::Num(shifty), Value::Num(1.0)]).unwrap();
    }
    d
}

proptest! {
    /// ISSUE 4 acceptance: a panicking case in `explain_batch` returns a
    /// per-slot error while all other cases produce bit-identical results
    /// to a clean serial run — for an arbitrary poison pattern.
    #[test]
    fn poisoned_cases_are_isolated_and_neighbours_stay_bit_identical(
        base in 1.0_f64..100.0,
        jump in 2.0_f64..10.0,
        seedish in 0u64..1000,
        poison_mask in 1u8..=255,
    ) {
        let poisoned_at = |i: usize| poison_mask & (1 << i) != 0;
        let built: Vec<(Dataset, Region)> = (0..8)
            .map(|i| {
                let (clean, region) = dataset_from(base, jump, 15 + 8 * i, seedish + i as u64);
                if poisoned_at(i) {
                    (poisoned_dataset_from(base, jump, 15 + 8 * i, seedish + i as u64), region)
                } else {
                    (clean, region)
                }
            })
            .collect();
        let cases: Vec<Case<'_>> = built.iter().map(|(d, r)| Case::new(d, r)).collect();

        // Both engines trained on the same clean dataset -> identical models.
        let (train_d, train_r) = dataset_from(base, jump, 40, seedish);
        let threaded = engine(ExecPolicy::Threads(4), &train_d, &train_r);
        let serial = engine(ExecPolicy::Serial, &train_d, &train_r);

        // The chaos panics are caught per slot; keep the default hook from
        // spamming stderr while they fire. `quiet_panics` serialises the
        // hook swap against other tests on parallel threads.
        let batch = dbsherlock::core::chaos::quiet_panics(|| threaded.explain_batch(&cases));

        for (i, result) in batch.iter().enumerate() {
            if poisoned_at(i) {
                prop_assert!(
                    matches!(result, Err(SherlockError::TaskPanicked { stage: "rank", .. })),
                    "case {}: expected TaskPanicked, got {:?}", i, result
                );
            } else {
                let (d, r) = &built[i];
                let reference = serial.try_explain(d, r, None).unwrap();
                let got = result.as_ref().unwrap();
                prop_assert_eq!(observe(got), observe(&reference), "case {}", i);
            }
        }
    }

    /// Serial and 4-thread explains are bit-identical on random data.
    #[test]
    fn explain_is_identical_across_policies(
        base in 1.0_f64..100.0,
        jump in 2.0_f64..10.0,
        shift_at in 10usize..70,
        seedish in 0u64..1000,
    ) {
        let (d, abnormal) = dataset_from(base, jump, shift_at, seedish);
        let serial = engine(ExecPolicy::Serial, &d, &abnormal);
        let threaded = engine(ExecPolicy::Threads(4), &d, &abnormal);
        let a = serial.explain(&d, &abnormal, None);
        let b = threaded.explain(&d, &abnormal, None);
        prop_assert_eq!(observe(&a), observe(&b));
    }

    /// Automatic detection is policy-independent too (potential power and
    /// the k-dist scan run on the pool).
    #[test]
    fn detect_is_identical_across_policies(
        base in 1.0_f64..100.0,
        jump in 3.0_f64..10.0,
        seedish in 0u64..1000,
    ) {
        let (d, _) = dataset_from(base, jump, 40, seedish);
        let serial = Sherlock::new(SherlockParams::default().with_exec(ExecPolicy::Serial));
        let threaded = Sherlock::new(SherlockParams::default().with_exec(ExecPolicy::Threads(4)));
        let a = serial.detect(&d);
        let b = threaded.detect(&d);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn explain_batch_preserves_input_order() {
    // Distinguishable cases: each dataset shifts at a different row, so the
    // result at index `i` is attributable to the case at index `i`.
    let built: Vec<(Dataset, Region)> =
        (0..8).map(|i| dataset_from(10.0, 5.0, 15 + 8 * i, i as u64)).collect();
    let cases: Vec<Case<'_>> = built.iter().map(|(d, r)| Case::new(d, r)).collect();

    let sherlock = Sherlock::new(SherlockParams::default().with_exec(ExecPolicy::Threads(4)));
    let batch = sherlock.explain_batch(&cases);
    assert_eq!(batch.len(), cases.len());
    for ((d, r), result) in built.iter().zip(&batch) {
        let expected = sherlock.try_explain(d, r, None).unwrap();
        let got = result.as_ref().unwrap();
        assert_eq!(observe(got), observe(&expected));
    }
}

#[test]
fn explain_batch_equals_serial_loop_bit_for_bit() {
    let built: Vec<(Dataset, Region)> =
        (0..5).map(|i| dataset_from(20.0, 4.0, 20 + 10 * i, 99 + i as u64)).collect();
    let cases: Vec<Case<'_>> = built.iter().map(|(d, r)| Case::new(d, r)).collect();

    let serial = engine(ExecPolicy::Serial, &built[0].0, &built[0].1);
    let threaded = engine(ExecPolicy::Threads(4), &built[0].0, &built[0].1);

    let looped: Vec<_> = cases
        .iter()
        .map(|c| serial.try_explain(c.dataset, c.abnormal, c.normal).unwrap())
        .collect();
    let batched = threaded.explain_batch(&cases);
    for (a, b) in looped.iter().zip(&batched) {
        assert_eq!(observe(a), observe(b.as_ref().unwrap()));
    }
}
