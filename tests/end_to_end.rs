//! End-to-end integration tests: simulator → core diagnosis pipeline.

use dbsherlock::prelude::*;

fn incident(kind: AnomalyKind, seed: u64) -> LabeledDataset {
    Scenario::new(WorkloadConfig::tpcc_default(), 170, seed)
        .with_injection(Injection::new(kind, 60, 50))
        .run()
}

#[test]
fn every_anomaly_class_yields_predicates() {
    let sherlock = Sherlock::new(SherlockParams::default());
    for (i, kind) in AnomalyKind::ALL.into_iter().enumerate() {
        let labeled = incident(kind, 100 + i as u64);
        let explanation = sherlock.explain(&labeled.data, &labeled.abnormal_region(), None);
        assert!(!explanation.predicates.is_empty(), "{} produced no predicates", kind.name());
        // Every emitted predicate must separate strongly on its own data.
        for generated in &explanation.predicates {
            assert!(
                generated.separation_power >= sherlock.params().min_separation_power(),
                "{}: weak predicate {}",
                kind.name(),
                generated.predicate
            );
        }
    }
}

#[test]
fn feedback_loop_names_recurring_causes() {
    let mut sherlock = Sherlock::new(SherlockParams::default());
    for (i, kind) in AnomalyKind::ALL.into_iter().enumerate() {
        let labeled = incident(kind, 300 + i as u64);
        let explanation = sherlock.explain(&labeled.data, &labeled.abnormal_region(), None);
        sherlock.feedback(kind.name(), &explanation.predicates);
    }
    assert_eq!(sherlock.repository().models().len(), 10);

    let mut correct = 0;
    for (i, kind) in AnomalyKind::ALL.into_iter().enumerate() {
        let labeled = incident(kind, 700 + i as u64);
        let explanation = sherlock.explain(&labeled.data, &labeled.abnormal_region(), None);
        if explanation.top_cause().map(|c| c.cause == kind.name()).unwrap_or(false) {
            correct += 1;
        }
    }
    // Loose floor to stay robust to future tuning; the experiment binaries
    // report the exact numbers.
    assert!(correct >= 8, "only {correct}/10 recurring causes re-identified");
}

#[test]
fn merged_models_transfer_across_intensities() {
    use dbsherlock::core::{generate_predicates, merge_all, CausalModel};
    let params = SherlockParams::for_merging();
    let models: Vec<CausalModel> = (0..4u64)
        .map(|i| {
            let mut injection = Injection::new(AnomalyKind::TableRestore, 60, 45);
            injection.intensity = 0.75 + 0.15 * i as f64;
            let labeled = Scenario::new(WorkloadConfig::tpcc_default(), 170, 400 + i)
                .with_injection(injection)
                .run();
            let predicates = generate_predicates(
                &labeled.data,
                &labeled.abnormal_region(),
                &labeled.normal_region(),
                &params,
            );
            CausalModel::from_feedback("Table Restore", &predicates)
        })
        .collect();
    let merged = merge_all(models.iter()).unwrap();
    assert!(merged.merged_from == 4);
    assert!(!merged.predicates.is_empty());
    // Merged predicate set is a subset of the first model's attributes.
    for predicate in &merged.predicates {
        assert!(models[0].predicates.iter().any(|p| p.attr == predicate.attr));
    }

    let test = incident(AnomalyKind::TableRestore, 999);
    let truth = test.abnormal_region();
    let merged_f1 = merged.f1(&test.data, &truth).f1;
    assert!(merged_f1 > 0.5, "merged F1 {merged_f1}");
    let confidence = merged.confidence(&test.data, &truth, &test.normal_region(), &params);
    assert!(confidence > 0.6, "merged confidence {confidence}");
}

#[test]
fn detection_pipeline_matches_ground_truth_region() {
    let labeled = Scenario::new(WorkloadConfig::tpcc_default(), 640, 17)
        .with_injection(Injection::new(AnomalyKind::CpuSaturation, 280, 70))
        .run();
    let sherlock = Sherlock::new(SherlockParams::default());
    let detection = sherlock.detect(&labeled.data).expect("detectable");
    let iou = detection.region.iou(&labeled.abnormal_region());
    assert!(iou > 0.5, "IoU {iou}: {:?}", detection.region.intervals());
}

#[test]
fn csv_round_trip_preserves_diagnosis() {
    use dbsherlock::telemetry::{from_csv, to_csv};
    let labeled = incident(AnomalyKind::NetworkCongestion, 55);
    let sherlock = Sherlock::new(SherlockParams::default());
    let before = sherlock.explain(&labeled.data, &labeled.abnormal_region(), None);

    let reloaded = from_csv(&to_csv(&labeled.data)).expect("own CSV parses");
    let after = sherlock.explain(&reloaded, &labeled.abnormal_region(), None);

    let names = |e: &dbsherlock::core::Explanation| -> Vec<String> {
        e.predicates.iter().map(|g| g.predicate.attr.clone()).collect()
    };
    assert_eq!(names(&before), names(&after));
}

#[test]
fn tpce_workload_diagnosable_too() {
    let mut sherlock = Sherlock::new(SherlockParams::default());
    let train = Scenario::new(WorkloadConfig::tpce_default(), 170, 21)
        .with_injection(Injection::new(AnomalyKind::DatabaseBackup, 60, 50))
        .run();
    let explanation = sherlock.explain(&train.data, &train.abnormal_region(), None);
    assert!(!explanation.predicates.is_empty());
    sherlock.feedback("backup", &explanation.predicates);

    let test = Scenario::new(WorkloadConfig::tpce_default(), 170, 22)
        .with_injection(Injection::new(AnomalyKind::DatabaseBackup, 50, 60))
        .run();
    let verdict = sherlock.explain(&test.data, &test.abnormal_region(), None);
    assert_eq!(verdict.top_cause().unwrap().cause, "backup");
}
