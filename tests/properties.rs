//! Property-based tests over the core invariants (proptest).

use dbsherlock::core::filter::filter_partitions;
use dbsherlock::core::{
    generate_predicates, merge_predicates, partition_separation_power, separation_power,
    PartitionLabel, PartitionSpace, Predicate, SherlockParams,
};
use dbsherlock::telemetry::faults::{FaultKind, FaultPlan};
use dbsherlock::telemetry::{
    from_csv_lossy, stats, to_csv, AttributeMeta, Dataset, Region, Schema, Value,
};
use proptest::prelude::*;

fn dataset_from(values: &[f64]) -> Dataset {
    let schema = Schema::from_attrs([AttributeMeta::numeric("x")]).unwrap();
    let mut d = Dataset::new(schema);
    for (i, &v) in values.iter().enumerate() {
        d.push_row(i as f64, &[Value::Num(v)]).unwrap();
    }
    d
}

/// A two-numeric-column dataset with the 1 Hz timestamps every scenario
/// trace uses (row `i` stamped `i`).
fn two_column_dataset(a: &[f64], b: &[f64]) -> Dataset {
    let schema =
        Schema::from_attrs([AttributeMeta::numeric("a"), AttributeMeta::numeric("b")]).unwrap();
    let mut d = Dataset::new(schema);
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        d.push_row(i as f64, &[Value::Num(x), Value::Num(y)]).unwrap();
    }
    d
}

proptest! {
    /// Every finite value lands in exactly one partition, inside bounds.
    #[test]
    fn partition_space_covers_all_values(
        values in proptest::collection::vec(-1e6_f64..1e6, 2..200),
        r in 1usize..500,
    ) {
        let d = dataset_from(&values);
        if let Some(space) = PartitionSpace::build(&d, 0, r) {
            prop_assert_eq!(space.len(), r);
            for &v in &values {
                let j = space.index_of_num(v).unwrap();
                prop_assert!(j < r);
                let lb = space.lower_bound(j).unwrap();
                let ub = space.upper_bound(j).unwrap();
                // Containment up to float rounding at partition edges.
                let w = space.width().unwrap();
                prop_assert!(v >= lb - w * 1e-9 && v <= ub + w * 1e-9);
            }
        }
    }

    /// Separation power is always within [-1, 1] and antisymmetric under
    /// region swap.
    #[test]
    fn separation_power_bounded_and_antisymmetric(
        values in proptest::collection::vec(0.0_f64..100.0, 10..120),
        cut in 1usize..9,
        threshold in 0.0_f64..100.0,
    ) {
        let d = dataset_from(&values);
        let split = values.len() * cut / 10;
        let a = Region::from_range(0..split.max(1));
        let b = a.complement(values.len());
        prop_assume!(!b.is_empty());
        let p = Predicate::gt("x", threshold);
        let sp_ab = separation_power(&p, &d, &a, &b);
        let sp_ba = separation_power(&p, &d, &b, &a);
        prop_assert!((-1.0..=1.0).contains(&sp_ab));
        prop_assert!((sp_ab + sp_ba).abs() < 1e-12);
    }

    /// Filtering only ever erases labels (never invents or flips them),
    /// and is idempotent after one round on already-clean data.
    #[test]
    fn filtering_only_erases(labels_raw in proptest::collection::vec(0u8..3, 0..64)) {
        let labels: Vec<PartitionLabel> = labels_raw.iter().map(|&x| match x {
            0 => PartitionLabel::Empty,
            1 => PartitionLabel::Normal,
            _ => PartitionLabel::Abnormal,
        }).collect();
        let filtered = filter_partitions(&labels);
        prop_assert_eq!(filtered.len(), labels.len());
        for (before, after) in labels.iter().zip(&filtered) {
            prop_assert!(*after == *before || *after == PartitionLabel::Empty);
        }
    }

    /// Merging two same-direction numeric predicates yields a predicate
    /// implied by either input (union of matched regions).
    #[test]
    fn merged_predicate_is_a_superset(
        x in -1e3_f64..1e3,
        y in -1e3_f64..1e3,
        probe in -2e3_f64..2e3,
        upward in proptest::bool::ANY,
    ) {
        let (a, b) = if upward {
            (Predicate::gt("v", x), Predicate::gt("v", y))
        } else {
            (Predicate::lt("v", x), Predicate::lt("v", y))
        };
        let merged = merge_predicates(&a, &b).unwrap();
        if a.op.matches_num(probe) || b.op.matches_num(probe) {
            prop_assert!(merged.op.matches_num(probe));
        }
    }

    /// Region perturbation stays within bounds and keeps ordering.
    #[test]
    fn region_perturb_invariants(
        start in 0usize..100,
        width in 1usize..50,
        fraction in -0.9_f64..0.9,
    ) {
        let n = 200usize;
        let end = (start + width).min(n);
        prop_assume!(start < end);
        let region = Region::from_range(start..end);
        let perturbed = region.perturb(fraction, n);
        prop_assert!(!perturbed.is_empty());
        if let Some(&max) = perturbed.indices().last() {
            prop_assert!(max < n);
        }
        // Growing keeps all original rows.
        if fraction >= 0.0 {
            for &row in region.indices() {
                prop_assert!(perturbed.contains(row));
            }
        }
    }

    /// Normalization (Eq. 2) maps into [0, 1] and preserves order.
    #[test]
    fn normalization_into_unit_interval(
        values in proptest::collection::vec(-1e9_f64..1e9, 2..100),
    ) {
        let normalized = stats::normalize_slice(&values);
        prop_assert_eq!(normalized.len(), values.len());
        for &v in &normalized {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] < values[j] {
                    prop_assert!(normalized[i] <= normalized[j] + 1e-12);
                }
            }
        }
    }

    /// Generated predicates always satisfy the SP floor and θ gate, on any
    /// step-shaped random data.
    #[test]
    fn generated_predicates_respect_gates(
        base in 1.0_f64..100.0,
        jump in 1.5_f64..10.0,
        seedish in 0u64..1000,
    ) {
        let values: Vec<f64> = (0..80).map(|i| {
            let wiggle = (((i as u64 * 31 + seedish) % 17) as f64) / 17.0;
            if (50..70).contains(&i) { base * jump + wiggle } else { base + wiggle }
        }).collect();
        let d = dataset_from(&values);
        let abnormal = Region::from_range(50..70);
        let normal = abnormal.complement(80);
        let params = SherlockParams::default();
        for generated in generate_predicates(&d, &abnormal, &normal, &params) {
            prop_assert!(generated.separation_power >= params.min_separation_power());
            prop_assert!(generated.normalized_diff > params.theta());
        }
    }

    /// Lossy ingestion is the identity on clean CSV: `from_csv_lossy ∘
    /// to_csv` reproduces every row and value with zero warnings
    /// (`fmt_num` uses shortest-round-trip float formatting).
    #[test]
    fn lossy_ingest_round_trips_clean_csv(
        a in proptest::collection::vec(-1e12_f64..1e12, 1..80),
        b in proptest::collection::vec(-1e-3_f64..1e-3, 1..80),
    ) {
        let n = a.len().min(b.len());
        let d = two_column_dataset(&a[..n], &b[..n]);
        let (back, warnings) = from_csv_lossy(&to_csv(&d)).unwrap();
        prop_assert!(warnings.is_empty(), "clean input warned: {:?}", warnings);
        prop_assert_eq!(back.n_rows(), d.n_rows());
        prop_assert_eq!(back.schema().len(), d.schema().len());
        prop_assert_eq!(back.timestamps(), d.timestamps());
        for attr_id in 0..d.schema().len() {
            prop_assert_eq!(
                back.numeric(attr_id).unwrap(),
                d.numeric(attr_id).unwrap()
            );
        }
    }

    /// Any single-fault plan at any intensity yields bytes that lossy
    /// ingestion survives without panicking, never producing more rows
    /// than corruption could have added (duplication at most doubles).
    #[test]
    fn lossy_ingest_survives_any_fault(
        kind_idx in 0usize..FaultKind::ALL.len(),
        intensity in 0.0_f64..=1.0,
        seed in 0u64..1_000_000_000,
        values in proptest::collection::vec(0.0_f64..1e6, 2..60),
    ) {
        let d = two_column_dataset(&values, &values);
        let plan = FaultPlan::single(FaultKind::ALL[kind_idx], intensity, seed);
        let (corrupted, report) = plan.apply_csv(&to_csv(&d));
        if intensity > 0.0 {
            let _ = report.total(); // report is well-formed even when empty
        }
        // Lossy ingestion must either salvage a dataset or return a typed
        // error (e.g. everything truncated away) — never panic.
        if let Ok((back, _warnings)) = from_csv_lossy(&corrupted) {
            prop_assert!(
                back.n_rows() <= 2 * d.n_rows(),
                "{} rows from {} originals",
                back.n_rows(),
                d.n_rows()
            );
        }
    }

    /// Partition-space separation power (the Eq. 3 term) is bounded.
    #[test]
    fn partition_sp_bounded(
        values in proptest::collection::vec(0.0_f64..100.0, 20..100),
        threshold in 0.0_f64..100.0,
    ) {
        let d = dataset_from(&values);
        let n = values.len();
        let abnormal = Region::from_range(0..n / 2);
        let normal = abnormal.complement(n);
        if let Some(space) = PartitionSpace::build(&d, 0, 50) {
            let labels = dbsherlock::core::label::label_partitions(&d, 0, &space, &abnormal, &normal);
            let p = Predicate::gt("x", threshold);
            let sp = partition_separation_power(&p, &space, &labels, &d, 0);
            prop_assert!((-1.0..=1.0).contains(&sp));
        }
    }
}
