//! Integration tests for the baselines against simulator data.

use dbsherlock::baselines::{
    perfaugur_detect, PerfAugurConfig, PerfXplain, PerfXplainConfig, TrainingSet,
};
use dbsherlock::prelude::*;

fn incidents(kind: AnomalyKind, n: usize, base_seed: u64) -> Vec<LabeledDataset> {
    (0..n as u64)
        .map(|i| {
            Scenario::new(WorkloadConfig::tpcc_default(), 170, base_seed + i)
                .with_injection(Injection::new(kind, 60, 50))
                .run()
        })
        .collect()
}

#[test]
fn perfxplain_learns_something_on_simulator_data() {
    let train = incidents(AnomalyKind::CpuSaturation, 4, 10);
    let regions: Vec<Region> = train.iter().map(|l| l.abnormal_region()).collect();
    let sets: Vec<TrainingSet<'_>> = train
        .iter()
        .zip(&regions)
        .map(|(l, r)| TrainingSet { data: &l.data, abnormal: r })
        .collect();
    let model = PerfXplain::train(&sets, PerfXplainConfig::default()).expect("trainable");
    assert!(!model.predicates.is_empty());
    // Latency (the query's performance indicator) is never a feature.
    assert!(model.predicates.iter().all(|p| p.attr != "txn_avg_latency_ms"));

    let test = &incidents(AnomalyKind::CpuSaturation, 1, 77)[0];
    let predicted = model.predict(&test.data);
    let truth = test.abnormal_region();
    let recall = predicted.intersect(&truth).len() as f64 / truth.len() as f64;
    assert!(recall > 0.3, "PerfXplain recall {recall}");
}

#[test]
fn dbsherlock_predicates_beat_perfxplain_on_subtle_anomalies() {
    use dbsherlock::core::{generate_predicates, merge_all, CausalModel};
    // Poor Physical Design is the paper's (and our) subtle case.
    let train = incidents(AnomalyKind::PoorPhysicalDesign, 6, 30);
    let regions: Vec<Region> = train.iter().map(|l| l.abnormal_region()).collect();
    let test = &incidents(AnomalyKind::PoorPhysicalDesign, 1, 99)[0];
    let truth = test.abnormal_region();

    // Strict separation-power floor: F1 scores the conjunction as a
    // classifier (same configuration as the Fig. 9 harness).
    let params = SherlockParams::for_merging().with_min_separation_power(0.85);
    let models: Vec<CausalModel> = train
        .iter()
        .map(|l| {
            let preds =
                generate_predicates(&l.data, &l.abnormal_region(), &l.normal_region(), &params);
            CausalModel::from_feedback("ppd", &preds)
        })
        .collect();
    let merged = merge_all(models.iter()).unwrap();
    let dbs_f1 = merged.f1(&test.data, &truth).f1;

    let sets: Vec<TrainingSet<'_>> = train
        .iter()
        .zip(&regions)
        .map(|(l, r)| TrainingSet { data: &l.data, abnormal: r })
        .collect();
    let px = PerfXplain::train(&sets, PerfXplainConfig::default()).unwrap();
    let predicted = px.predict(&test.data);
    let px_acc = dbsherlock::core::Accuracy::of_regions(&predicted, &truth);

    assert!(
        dbs_f1 > px_acc.f1,
        "DBSherlock F1 {dbs_f1:.2} should beat PerfXplain F1 {:.2}",
        px_acc.f1
    );
}

#[test]
fn perfaugur_finds_plateaus_in_simulated_latency() {
    let labeled = Scenario::new(WorkloadConfig::tpcc_default(), 640, 3)
        .with_injection(Injection::new(AnomalyKind::LockContention, 300, 60))
        .run();
    let found = perfaugur_detect(&labeled.data, &PerfAugurConfig::default()).expect("window");
    let truth = labeled.abnormal_region();
    // PerfAugur should at least land inside the anomaly.
    assert!(
        !found.region.intersect(&truth).is_empty(),
        "window {:?} misses truth {:?}",
        found.region.intervals(),
        truth.intervals()
    );
}
