//! Offline stand-in for `criterion` used by this workspace's hermetic build.
//!
//! Implements the bench-definition API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `BenchmarkId`) with a simple wall-clock measurement
//! loop: warm up briefly, then run a fixed number of timed iterations and
//! print mean/min per-iteration times. No statistics engine, no HTML
//! reports — enough to run `cargo bench` offline and compare hot paths
//! release-to-release.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure under `bench_function`; runs the measured loop.
pub struct Bencher {
    samples: u64,
    results: Vec<Duration>,
}

impl Bencher {
    /// Measure `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Brief warm-up so first-touch effects don't dominate.
        for _ in 0..2 {
            black_box(routine());
        }
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }
}

fn print_report(name: &str, results: &[Duration]) {
    if results.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = results.iter().sum();
    let mean = total / results.len() as u32;
    let min = results.iter().min().copied().unwrap_or_default();
    println!(
        "{name:<50} mean {mean:>12.3?}   min {min:>12.3?}   ({} samples)",
        results.len()
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut bencher);
        print_report(name, &bencher.results);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks with shared configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Override the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    /// Override the measurement time (accepted for API compatibility; the
    /// stand-in measures a fixed sample count instead).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size.unwrap_or(self.criterion.sample_size),
            results: Vec::new(),
        };
        f(&mut bencher);
        print_report(&format!("{}/{}", self.name, id), &bencher.results);
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra in the stand-in).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
