//! Offline stand-in for `serde_derive`: a dependency-free derive macro
//! (no `syn`/`quote`) that parses structs and enums directly from the token
//! stream and generates `Serialize`/`Deserialize` impls against the
//! JSON-tree data model of the sibling `serde` stand-in.
//!
//! Supported shapes — everything this workspace derives on:
//! * structs with named fields (honouring `#[serde(skip)]`)
//! * tuple structs (newtype structs serialize transparently)
//! * unit structs
//! * enums with unit, tuple, and struct variants (externally tagged,
//!   matching upstream serde_json's encoding)
//!
//! Generic items are intentionally unsupported and produce a compile error,
//! so accidental reliance is caught at build time rather than silently
//! misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed named field.
struct Field {
    name: String,
    skipped: bool,
}

/// Shape of a struct body or enum-variant payload.
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "offline serde_derive does not support generic items (`{name}`)"
        ));
    }

    match keyword.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Item::Struct { name, shape })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("unexpected enum body: {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

/// Collect field/variant attributes, reporting whether `#[serde(skip)]` is
/// among them.
fn collect_attributes(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skipped = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let is_serde =
                    matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
                if is_serde {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        let has_skip = args.stream().into_iter().any(|t| {
                            matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")
                        });
                        skipped |= has_skip;
                    }
                }
                *i += 1;
            }
        }
    }
    skipped
}

/// Skip a type expression up to a top-level comma, tracking `<...>` nesting
/// (generic-argument commas are not field separators).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skipped = collect_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, found {other:?}")),
        }
        skip_type(&tokens, &mut i);
        // Now at a top-level comma or end of stream.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field { name, skipped });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_tokens_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens_since_comma = true;
    }
    // Trailing comma does not introduce a field.
    if !saw_tokens_since_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        collect_attributes(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream())?)
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < tokens.len()
                && !matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const IMPL_ATTRS: &str = "#[automatically_derived]\n#[allow(unused_variables, unused_mut, clippy::all)]\n";

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => (name, gen_serialize_struct(name, shape)),
        Item::Enum { name, variants } => (name, gen_serialize_enum(name, variants)),
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn to_json(&self) -> ::std::option::Option<::serde::JsonValue> {{\n{body}\n}}\n}}\n"
    )
}

fn gen_serialize_struct(_name: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => "::std::option::Option::Some(::serde::JsonValue::Null)".to_string(),
        Shape::Tuple(1) => "::serde::Serialize::to_json(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_json(&self.{k})?"))
                .collect();
            format!(
                "::std::option::Option::Some(::serde::JsonValue::Array(::std::vec![{}]))",
                items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let mut out = String::from(
                "let mut _map = ::std::collections::BTreeMap::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skipped) {
                out.push_str(&format!(
                    "_map.insert(::std::string::String::from({:?}), \
                     ::serde::Serialize::to_json(&self.{})?);\n",
                    f.name, f.name
                ));
            }
            out.push_str("::std::option::Option::Some(::serde::JsonValue::Object(_map))");
            out
        }
    }
}

fn gen_serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            Shape::Unit => arms.push_str(&format!(
                "{name}::{vname} => ::std::option::Option::Some(\
                 ::serde::JsonValue::String(::std::string::String::from({vname:?}))),\n"
            )),
            Shape::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|k| format!("_f{k}")).collect();
                let payload = if *n == 1 {
                    "::serde::Serialize::to_json(_f0)?".to_string()
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_json({b})?"))
                        .collect();
                    format!(
                        "::serde::JsonValue::Array(::std::vec![{}])",
                        items.join(", ")
                    )
                };
                arms.push_str(&format!(
                    "{name}::{vname}({}) => {{\n\
                     let mut _map = ::std::collections::BTreeMap::new();\n\
                     _map.insert(::std::string::String::from({vname:?}), {payload});\n\
                     ::std::option::Option::Some(::serde::JsonValue::Object(_map))\n}}\n",
                    binders.join(", ")
                ));
            }
            Shape::Named(fields) => {
                let binders: Vec<&str> =
                    fields.iter().map(|f| f.name.as_str()).collect();
                let mut inner = String::from(
                    "let mut _inner = ::std::collections::BTreeMap::new();\n",
                );
                for f in fields.iter().filter(|f| !f.skipped) {
                    inner.push_str(&format!(
                        "_inner.insert(::std::string::String::from({:?}), \
                         ::serde::Serialize::to_json({})?);\n",
                        f.name, f.name
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vname} {{ {} }} => {{\n{inner}\
                     let mut _map = ::std::collections::BTreeMap::new();\n\
                     _map.insert(::std::string::String::from({vname:?}), \
                     ::serde::JsonValue::Object(_inner));\n\
                     ::std::option::Option::Some(::serde::JsonValue::Object(_map))\n}}\n",
                    binders.join(", ")
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => (name, gen_deserialize_struct(name, shape)),
        Item::Enum { name, variants } => (name, gen_deserialize_enum(name, variants)),
    };
    format!(
        "{IMPL_ATTRS}impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn from_json(_value: &::serde::JsonValue) -> ::std::option::Option<Self> {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize_struct(name: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => format!(
            "match _value {{\n\
             ::serde::JsonValue::Null => ::std::option::Option::Some({name}),\n\
             _ => ::std::option::Option::None,\n}}"
        ),
        Shape::Tuple(1) => {
            format!("::std::option::Option::Some({name}(::serde::Deserialize::from_json(_value)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_json(&_arr[{k}])?"))
                .collect();
            format!(
                "let _arr = _value.as_array()?;\n\
                 if _arr.len() != {n} {{ return ::std::option::Option::None; }}\n\
                 ::std::option::Option::Some({name}({}))",
                items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skipped {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{}: ::serde::Deserialize::from_json(_obj.get({:?})?)?,\n",
                        f.name, f.name
                    ));
                }
            }
            format!(
                "let _obj = _value.as_object()?;\n\
                 ::std::option::Option::Some({name} {{\n{inits}}})"
            )
        }
    }
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit: Vec<&Variant> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .collect();
    let payload: Vec<&Variant> = variants
        .iter()
        .filter(|v| !matches!(v.shape, Shape::Unit))
        .collect();

    let mut out = String::new();
    if !unit.is_empty() {
        let arms: String = unit
            .iter()
            .map(|v| {
                format!(
                    "{:?} => ::std::option::Option::Some({name}::{}),\n",
                    v.name, v.name
                )
            })
            .collect();
        out.push_str(&format!(
            "if let ::std::option::Option::Some(_s) = _value.as_str() {{\n\
             return match _s {{\n{arms}_ => ::std::option::Option::None,\n}};\n}}\n"
        ));
    }
    if payload.is_empty() {
        out.push_str("::std::option::Option::None");
        return out;
    }
    let mut arms = String::new();
    for v in &payload {
        let vname = &v.name;
        let body = match &v.shape {
            Shape::Unit => unreachable!(),
            Shape::Tuple(1) => format!(
                "::std::option::Option::Some({name}::{vname}(\
                 ::serde::Deserialize::from_json(_payload)?))"
            ),
            Shape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_json(&_arr[{k}])?"))
                    .collect();
                format!(
                    "{{\nlet _arr = _payload.as_array()?;\n\
                     if _arr.len() != {n} {{ return ::std::option::Option::None; }}\n\
                     ::std::option::Option::Some({name}::{vname}({}))\n}}",
                    items.join(", ")
                )
            }
            Shape::Named(fields) => {
                let mut inits = String::new();
                for f in fields {
                    if f.skipped {
                        inits.push_str(&format!(
                            "{}: ::std::default::Default::default(),\n",
                            f.name
                        ));
                    } else {
                        inits.push_str(&format!(
                            "{}: ::serde::Deserialize::from_json(_vobj.get({:?})?)?,\n",
                            f.name, f.name
                        ));
                    }
                }
                format!(
                    "{{\nlet _vobj = _payload.as_object()?;\n\
                     ::std::option::Option::Some({name}::{vname} {{\n{inits}}})\n}}"
                )
            }
        };
        arms.push_str(&format!("{vname:?} => {body},\n"));
    }
    out.push_str(&format!(
        "let _obj = _value.as_object()?;\n\
         if _obj.len() != 1 {{ return ::std::option::Option::None; }}\n\
         let (_tag, _payload) = _obj.iter().next()?;\n\
         match _tag.as_str() {{\n{arms}_ => ::std::option::Option::None,\n}}"
    ));
    out
}
