//! Offline stand-in for `serde` used by this workspace's hermetic build.
//!
//! The build container has no registry access, so the workspace patches
//! `serde`/`serde_derive`/`serde_json` to these functional mini
//! implementations. Instead of serde's visitor architecture, the data model
//! here is a concrete JSON tree ([`JsonValue`]): `Serialize` renders into it
//! and `Deserialize` reads back out of it. The derive macro (in the sibling
//! `serde_derive` crate) generates externally-tagged enum encodings and
//! plain-object struct encodings compatible with what upstream serde_json
//! would produce for the types in this workspace, so on-disk artifacts stay
//! interchangeable with a registry build.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// The concrete data model values serialize into (re-exported by the
/// `serde_json` stand-in as `serde_json::Value`).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum JsonValue {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as f64; large u64/i64 round through f64).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<JsonValue>),
    /// JSON object with deterministic (sorted) key order.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Borrow as an object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<JsonValue>> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Numeric view (numbers only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Unsigned view of a number, when integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Signed view of a number, when integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Number(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Index into an object by key (`Null` when absent or not an object).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Types renderable into the JSON data model.
///
/// Returns `None` when the value cannot be represented (the stand-in's
/// equivalent of a serialization error).
pub trait Serialize {
    /// Render `self` into a [`JsonValue`].
    fn to_json(&self) -> Option<JsonValue>;
}

/// Types reconstructible from the JSON data model.
///
/// Returns `None` on shape mismatch (the stand-in's equivalent of a
/// deserialization error). The lifetime parameter mirrors upstream serde's
/// signature so `for<'de> Deserialize<'de>` bounds keep compiling.
pub trait Deserialize<'de>: Sized {
    /// Rebuild `Self` from a [`JsonValue`].
    fn from_json(value: &JsonValue) -> Option<Self>;
}

/// Mirror of `serde::de` with the owned-deserialization marker trait.
pub mod de {
    /// Marker for types deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}

/// Mirror of `serde::ser` (kept minimal; exists for path compatibility).
pub mod ser {
    pub use crate::Serialize;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Option<JsonValue> {
                Some(JsonValue::Number(*self as f64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_json(value: &JsonValue) -> Option<Self> {
                let n = value.as_f64()?;
                if n.fract() != 0.0 {
                    return None;
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return None;
                }
                Some(n as $t)
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Option<JsonValue> {
        if self.is_finite() {
            Some(JsonValue::Number(*self))
        } else {
            // Upstream serde_json renders non-finite floats as null.
            Some(JsonValue::Null)
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_json(value: &JsonValue) -> Option<Self> {
        match value {
            JsonValue::Number(n) => Some(*n),
            // Tolerate the null encoding of non-finite floats.
            JsonValue::Null => Some(f64::NAN),
            _ => None,
        }
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Option<JsonValue> {
        (*self as f64).to_json()
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_json(value: &JsonValue) -> Option<Self> {
        f64::from_json(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Option<JsonValue> {
        Some(JsonValue::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_json(value: &JsonValue) -> Option<Self> {
        value.as_bool()
    }
}

impl Serialize for String {
    fn to_json(&self) -> Option<JsonValue> {
        Some(JsonValue::String(self.clone()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_json(value: &JsonValue) -> Option<Self> {
        value.as_str().map(str::to_owned)
    }
}

impl Serialize for str {
    fn to_json(&self) -> Option<JsonValue> {
        Some(JsonValue::String(self.to_owned()))
    }
}

impl Serialize for char {
    fn to_json(&self) -> Option<JsonValue> {
        Some(JsonValue::String(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_json(value: &JsonValue) -> Option<Self> {
        let s = value.as_str()?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Some(c),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Option<JsonValue> {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json(&self) -> Option<JsonValue> {
        (**self).to_json()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_json(value: &JsonValue) -> Option<Self> {
        T::from_json(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Option<JsonValue> {
        match self {
            None => Some(JsonValue::Null),
            Some(v) => v.to_json(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_json(value: &JsonValue) -> Option<Self> {
        match value {
            JsonValue::Null => Some(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Option<JsonValue> {
        self.as_slice().to_json()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Option<JsonValue> {
        let mut out = Vec::with_capacity(self.len());
        for item in self {
            out.push(item.to_json()?);
        }
        Some(JsonValue::Array(out))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Option<JsonValue> {
        self.as_slice().to_json()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_json(value: &JsonValue) -> Option<Self> {
        let arr = value.as_array()?;
        let mut out = Vec::with_capacity(arr.len());
        for item in arr {
            out.push(T::from_json(item)?);
        }
        Some(out)
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_json(value: &JsonValue) -> Option<Self> {
        let vec = Vec::<T>::from_json(value)?;
        vec.try_into().ok()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Option<JsonValue> {
        Some(JsonValue::Array(vec![self.0.to_json()?, self.1.to_json()?]))
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn from_json(value: &JsonValue) -> Option<Self> {
        let arr = value.as_array()?;
        if arr.len() != 2 {
            return None;
        }
        Some((A::from_json(&arr[0])?, B::from_json(&arr[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json(&self) -> Option<JsonValue> {
        Some(JsonValue::Array(vec![
            self.0.to_json()?,
            self.1.to_json()?,
            self.2.to_json()?,
        ]))
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn from_json(value: &JsonValue) -> Option<Self> {
        let arr = value.as_array()?;
        if arr.len() != 3 {
            return None;
        }
        Some((
            A::from_json(&arr[0])?,
            B::from_json(&arr[1])?,
            C::from_json(&arr[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json(&self) -> Option<JsonValue> {
        let mut out = BTreeMap::new();
        for (k, v) in self {
            out.insert(k.clone(), v.to_json()?);
        }
        Some(JsonValue::Object(out))
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn from_json(value: &JsonValue) -> Option<Self> {
        let obj = value.as_object()?;
        let mut out = BTreeMap::new();
        for (k, v) in obj {
            out.insert(k.clone(), V::from_json(v)?);
        }
        Some(out)
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_json(&self) -> Option<JsonValue> {
        let mut out = BTreeMap::new();
        for (k, v) in self {
            out.insert(k.clone(), v.to_json()?);
        }
        Some(JsonValue::Object(out))
    }
}

impl<'de, V: Deserialize<'de>, S: std::hash::BuildHasher + Default> Deserialize<'de>
    for HashMap<String, V, S>
{
    fn from_json(value: &JsonValue) -> Option<Self> {
        let obj = value.as_object()?;
        let mut out = HashMap::with_capacity_and_hasher(obj.len(), S::default());
        for (k, v) in obj {
            out.insert(k.clone(), V::from_json(v)?);
        }
        Some(out)
    }
}

impl Serialize for JsonValue {
    fn to_json(&self) -> Option<JsonValue> {
        Some(self.clone())
    }
}

impl<'de> Deserialize<'de> for JsonValue {
    fn from_json(value: &JsonValue) -> Option<Self> {
        Some(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_json(&42u32.to_json().unwrap()), Some(42));
        assert_eq!(f64::from_json(&1.5f64.to_json().unwrap()), Some(1.5));
        assert_eq!(bool::from_json(&true.to_json().unwrap()), Some(true));
        assert_eq!(
            String::from_json(&"hi".to_string().to_json().unwrap()),
            Some("hi".to_string())
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_json(), Some(JsonValue::Null));
        assert!(f64::from_json(&JsonValue::Null).unwrap().is_nan());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_json(&v.to_json().unwrap()), Some(v));
        let opt: Option<u8> = None;
        assert_eq!(Option::<u8>::from_json(&opt.to_json().unwrap()), Some(None));
        let pair = (3usize, "x".to_string());
        assert_eq!(
            <(usize, String)>::from_json(&pair.to_json().unwrap()),
            Some(pair)
        );
    }

    #[test]
    fn out_of_range_ints_rejected() {
        assert_eq!(u8::from_json(&JsonValue::Number(300.0)), None);
        assert_eq!(u8::from_json(&JsonValue::Number(1.5)), None);
    }
}
