//! Offline stand-in for `proptest` used by this workspace's hermetic build.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! rely on: the `proptest!` macro (with `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, range and tuple
//! strategies, `collection::{vec, btree_set}`, `num::f64` class strategies
//! with `|` unions, `bool::ANY`, and string strategies from (simplified)
//! regex patterns. Cases are generated from a deterministic per-test PRNG;
//! there is no shrinking — a failing case panics with the assertion message,
//! which is enough signal for CI.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy producing a single fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Choice between two strategies with the same value type (built by the
    /// `|` operator on the class strategies in [`crate::num`]).
    #[derive(Clone, Copy, Debug)]
    pub struct Union<A, B>(pub A, pub B);

    impl<A, B> Strategy for Union<A, B>
    where
        A: Strategy,
        B: Strategy<Value = A::Value>,
    {
        type Value = A::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                self.0.sample(rng)
            } else {
                self.1.sample(rng)
            }
        }
    }

    impl<A, B, C> std::ops::BitOr<C> for Union<A, B> {
        type Output = Union<Union<A, B>, C>;
        fn bitor(self, rhs: C) -> Self::Output {
            Union(self, rhs)
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let hop = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + hop) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let hop = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (start as i128 + hop) as $t
                }
            }
        )*};
    }

    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    start + rng.unit_f64() as $t * (end - start)
                }
            }
        )*};
    }

    impl_range_strategy_float!(f32, f64);

    /// String strategy from a (simplified) regex character-class pattern:
    /// `"[chars]{lo,hi}"`. Character classes support literal characters,
    /// `a-z` ranges, and the `\PC` printable-unicode escape; anything else
    /// falls back to free-form printable ASCII. This covers how the
    /// workspace's tests use regex strategies (fuzzing labels), without a
    /// full regex engine.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (pool, lo, hi) = parse_class_pattern(self);
            let len = lo + (rng.next_u64() as usize) % (hi - lo + 1);
            (0..len)
                .map(|_| pool[(rng.next_u64() as usize) % pool.len()])
                .collect()
        }
    }

    fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let fallback_pool: Vec<char> = (' '..='~').collect();
        let chars: Vec<char> = pattern.chars().collect();
        if chars.first() != Some(&'[') {
            return (fallback_pool, 0, 8);
        }
        let close = match chars.iter().position(|&c| c == ']') {
            Some(i) => i,
            None => return (fallback_pool, 0, 8),
        };
        let mut pool = Vec::new();
        let mut i = 1;
        while i < close {
            match chars[i] {
                '\\' if i + 1 < close => {
                    match chars[i + 1] {
                        // \PC — printable characters: sample ASCII printable
                        // plus a few multi-byte code points to exercise UTF-8.
                        'P' | 'p' => {
                            pool.extend(' '..='~');
                            pool.extend(['é', 'λ', '∞', '測', '😀']);
                            // Skip the category letter following \P as well.
                            if i + 2 < close {
                                i += 1;
                            }
                        }
                        'n' => pool.push('\n'),
                        'r' => pool.push('\r'),
                        't' => pool.push('\t'),
                        other => pool.push(other),
                    }
                    i += 2;
                }
                c if i + 2 < close && chars[i + 1] == '-' => {
                    let end = chars[i + 2];
                    let (a, b) = (c as u32, end as u32);
                    for code in a..=b {
                        if let Some(ch) = char::from_u32(code) {
                            pool.push(ch);
                        }
                    }
                    i += 3;
                }
                c => {
                    pool.push(c);
                    i += 1;
                }
            }
        }
        if pool.is_empty() {
            pool = fallback_pool;
        }
        // Parse the {lo,hi} / {n} repetition suffix.
        let rest: String = chars[close + 1..].iter().collect();
        let (lo, hi) = if let Some(body) = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
        {
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().unwrap_or(0),
                    b.trim().parse().unwrap_or(8),
                ),
                None => {
                    let n = body.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        } else if rest == "*" {
            (0, 8)
        } else if rest == "+" {
            (1, 8)
        } else {
            (1, 1)
        };
        (pool, lo, hi.max(lo))
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }
}

pub mod test_runner {
    /// Per-test deterministic PRNG (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from the test name and a fixed salt.
        pub fn for_test(name: &str) -> Self {
            let mut state = 0x6a09_e667_f3bc_c908u64;
            for b in name.bytes() {
                state = state.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
            }
            TestRng { state }
        }

        /// Next raw word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runner configuration (subset: case count).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; draw another case.
        Reject,
        /// `prop_assert!`-style failure with a rendered message.
        Fail(String),
    }
}

/// Numeric class strategies (`prop::num::f64::NORMAL | ...`).
pub mod num {
    /// `f64` class strategies.
    pub mod f64 {
        use crate::strategy::{Strategy, Union};
        use crate::test_runner::TestRng;

        /// Marker for one floating-point class.
        #[derive(Clone, Copy, Debug)]
        pub struct F64Class {
            kind: Kind,
        }

        #[derive(Clone, Copy, Debug)]
        enum Kind {
            Normal,
            Zero,
            Negative,
            Positive,
            Any,
        }

        /// Normal (non-zero, non-subnormal, finite) values of either sign.
        pub const NORMAL: F64Class = F64Class { kind: Kind::Normal };
        /// Positive or negative zero.
        pub const ZERO: F64Class = F64Class { kind: Kind::Zero };
        /// Strictly negative finite values.
        pub const NEGATIVE: F64Class = F64Class {
            kind: Kind::Negative,
        };
        /// Strictly positive finite values.
        pub const POSITIVE: F64Class = F64Class {
            kind: Kind::Positive,
        };
        /// Any finite value.
        pub const ANY: F64Class = F64Class { kind: Kind::Any };

        fn normal_f64(rng: &mut TestRng) -> f64 {
            // Clamp the exponent into the normal range [1, 2046] and clear
            // NaN/Inf patterns; keeps full mantissa coverage.
            loop {
                let bits = rng.next_u64();
                let exponent = ((bits >> 52) & 0x7ff).clamp(1, 2046);
                let v = f64::from_bits((bits & !(0x7ffu64 << 52)) | (exponent << 52));
                if v.is_normal() {
                    return v;
                }
            }
        }

        impl Strategy for F64Class {
            type Value = f64;
            fn sample(&self, rng: &mut TestRng) -> f64 {
                match self.kind {
                    Kind::Normal => normal_f64(rng),
                    Kind::Zero => {
                        if rng.next_u64() & 1 == 0 {
                            0.0
                        } else {
                            -0.0
                        }
                    }
                    Kind::Negative => -normal_f64(rng).abs(),
                    Kind::Positive => normal_f64(rng).abs(),
                    Kind::Any => {
                        if rng.next_u64() & 7 == 0 {
                            0.0
                        } else {
                            normal_f64(rng)
                        }
                    }
                }
            }
        }

        impl<R> std::ops::BitOr<R> for F64Class {
            type Output = Union<F64Class, R>;
            fn bitor(self, rhs: R) -> Self::Output {
                Union(self, rhs)
            }
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy over both booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Size specification for collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + (rng.next_u64() as usize) % (self.hi - self.lo + 1)
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet`s (size is a target; duplicates collapse).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts: duplicates may keep the set under target size
            // when the element domain is small, as in upstream proptest.
            for _ in 0..n * 4 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }

    /// `proptest::collection::btree_set`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// `any::<bool>()`-style entry point for the few types we support.
    pub fn any<T: DefaultStrategy>() -> T::Strategy {
        T::default_strategy()
    }

    /// Types with a canonical default strategy.
    pub trait DefaultStrategy {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Build the canonical strategy.
        fn default_strategy() -> Self::Strategy;
    }

    impl DefaultStrategy for bool {
        type Strategy = crate::bool::Any;
        fn default_strategy() -> Self::Strategy {
            crate::bool::ANY
        }
    }

    impl DefaultStrategy for f64 {
        type Strategy = crate::num::f64::F64Class;
        fn default_strategy() -> Self::Strategy {
            crate::num::f64::ANY
        }
    }
}

/// The property-test macro: wraps each `fn name(arg in strategy, ..) { .. }`
/// into a `#[test]`-compatible function that draws deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(100);
            while passed < config.cases {
                attempts += 1;
                if attempts > max_attempts {
                    panic!(
                        "proptest `{}`: too many rejected cases ({} passed of {} wanted)",
                        stringify!($name), passed, config.cases
                    );
                }
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest `{}` failed: {}", stringify!($name), msg);
                    }
                }
            }
        }
    )*};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {:?} == {:?}: {}", l, r, ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
}

/// Reject the current case (draw fresh inputs) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -2.0_f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y = {}", y);
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u8..3, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 3));
        }

        #[test]
        fn f64_classes(x in prop::num::f64::NORMAL | prop::num::f64::ZERO | prop::num::f64::NEGATIVE) {
            prop_assert!(x.is_finite());
        }

        #[test]
        fn string_pattern(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.chars().count()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn assume_rejects(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
