//! Offline stand-in for the `rand` crate (0.9 API surface used by this
//! workspace). The container building this repository has no registry
//! access, so the workspace patches `rand` to this functional, dependency-free
//! implementation: a seeded xoshiro256++ generator behind the `Rng` /
//! `SeedableRng` traits. Streams differ from upstream `StdRng` but are
//! deterministic for a given seed, which is all the simulator and benches
//! rely on.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from a raw 64-bit word (the subset of
/// `StandardUniform` this workspace uses).
pub trait StandardSample: Sized {
    /// Build a uniform sample from one random word.
    fn from_word(word: u64) -> Self;
}

impl StandardSample for f64 {
    fn from_word(word: u64) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn from_word(word: u64) -> Self {
        (word >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn from_word(word: u64) -> Self {
        word & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn from_word(word: u64) -> Self {
                word as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly samplable between two bounds (mirrors upstream's
/// `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                let hop = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + hop) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(lo < hi || (inclusive && lo <= hi), "cannot sample empty range");
                let unit = <$t as StandardSample>::from_word(rng.next_u64());
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges that can produce a uniform sample of `T`. A single blanket impl
/// per range shape — as in upstream rand — so an unsuffixed literal range
/// (`0..4`) unifies with the call site's expected type (e.g. a slice index)
/// instead of falling back to `i32`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard uniform distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::from_word(self.next_u64())
    }

    /// Sample uniformly from a range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Legacy 0.8-style alias for [`Rng::random`].
    fn gen_bool(&mut self, p: f64) -> bool {
        self.random_bool(p)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (via splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;

    /// Construct from OS entropy — deterministic fallback here, since the
    /// hermetic build intentionally has no entropy source dependency.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9e3779b97f4a7c15)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Named generator types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — deterministic, fast, good statistical quality.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // Guard against the all-zero state, which is a fixed point.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the "small" generator shares the implementation here.
    pub type SmallRng = StdRng;
}

/// Convenience thread-local-style generator (deterministic in this stand-in).
pub fn rng() -> rngs::StdRng {
    rngs::StdRng::seed_from_u64(0x5eed_5eed_5eed_5eed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.random_range(0..=4);
            assert!(w <= 4);
            let f = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
