//! Offline stand-in for `serde_json` used by this workspace's hermetic
//! build. Provides a real JSON tree ([`Value`]), a spec-compliant text
//! parser and printer (compact and pretty), `from_str`/`to_string`/
//! `to_string_pretty`, and a `json!` macro covering the object/array/
//! expression grammar the benches use. Backed by the JSON data model of the
//! sibling `serde` stand-in, so `#[derive(Serialize, Deserialize)]` types
//! round-trip through strings exactly like a registry build would.

use serde::de::DeserializeOwned;
pub use serde::JsonValue as Value;
use serde::Serialize;

/// Error type for serialization/deserialization failures.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Mirror of `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = value
        .to_json()
        .ok_or_else(|| Error("value cannot be represented as JSON".into()))?;
    let mut out = String::new();
    write_compact(&v, &mut out);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = value
        .to_json()
        .ok_or_else(|| Error("value cannot be represented as JSON".into()))?;
    let mut out = String::new();
    write_pretty(&v, &mut out, 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_json(&value).ok_or_else(|| Error("JSON shape does not match target type".into()))
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    value
        .to_json()
        .ok_or_else(|| Error("value cannot be represented as JSON".into()))
}

/// Convert a [`Value`] tree into a deserializable type.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T> {
    T::from_json(&value).ok_or_else(|| Error("JSON shape does not match target type".into()))
}

/// Support function for the `json!` macro: best-effort conversion, `Null` on
/// unrepresentable values (mirrors upstream's null-for-NaN behavior).
#[doc(hidden)]
pub fn __to_value_or_null<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json().unwrap_or(Value::Null)
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Construct a [`Value`] from JSON-like syntax. Supports `null`, booleans,
/// object literals with string keys, array literals, nesting, and arbitrary
/// serializable Rust expressions in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ({ $($body:tt)* }) => {{
        let mut _obj = ::std::collections::BTreeMap::new();
        $crate::__json_object!(_obj; $($body)*);
        $crate::Value::Object(_obj)
    }};
    ([ $($body:tt)* ]) => {{
        let mut _arr: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::__json_array!(_arr; $($body)*);
        $crate::Value::Array(_arr)
    }};
    ($expr:expr) => { $crate::__to_value_or_null(&$expr) };
}

/// Internal: munch `"key": value` entries into `$obj`.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    ($obj:ident;) => {};
    ($obj:ident; $key:literal : $($rest:tt)*) => {
        $crate::__json_entry!($obj; $key; []; $($rest)*);
    };
}

/// Internal: accumulate a value's tokens until a top-level comma.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_entry {
    // Nested object / array literal in value position (must be first tokens).
    ($obj:ident; $key:literal; []; { $($body:tt)* } , $($rest:tt)*) => {
        $obj.insert(::std::string::String::from($key), $crate::json!({ $($body)* }));
        $crate::__json_object!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal; []; { $($body:tt)* }) => {
        $obj.insert(::std::string::String::from($key), $crate::json!({ $($body)* }));
    };
    ($obj:ident; $key:literal; []; [ $($body:tt)* ] , $($rest:tt)*) => {
        $obj.insert(::std::string::String::from($key), $crate::json!([ $($body)* ]));
        $crate::__json_object!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal; []; [ $($body:tt)* ]) => {
        $obj.insert(::std::string::String::from($key), $crate::json!([ $($body)* ]));
    };
    // A top-level comma terminates the accumulated expression.
    ($obj:ident; $key:literal; [$($val:tt)*]; , $($rest:tt)*) => {
        $obj.insert(::std::string::String::from($key), $crate::json!($($val)*));
        $crate::__json_object!($obj; $($rest)*);
    };
    // End of input terminates the accumulated expression.
    ($obj:ident; $key:literal; [$($val:tt)+];) => {
        $obj.insert(::std::string::String::from($key), $crate::json!($($val)+));
    };
    // Otherwise: move one token into the accumulator.
    ($obj:ident; $key:literal; [$($val:tt)*]; $head:tt $($rest:tt)*) => {
        $crate::__json_entry!($obj; $key; [$($val)* $head]; $($rest)*);
    };
}

/// Internal: munch array elements into `$arr`.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_array {
    ($arr:ident;) => {};
    ($arr:ident; $($rest:tt)+) => {
        $crate::__json_elem!($arr; []; $($rest)+);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_elem {
    ($arr:ident; []; { $($body:tt)* } , $($rest:tt)*) => {
        $arr.push($crate::json!({ $($body)* }));
        $crate::__json_array!($arr; $($rest)*);
    };
    ($arr:ident; []; { $($body:tt)* }) => {
        $arr.push($crate::json!({ $($body)* }));
    };
    ($arr:ident; []; [ $($body:tt)* ] , $($rest:tt)*) => {
        $arr.push($crate::json!([ $($body)* ]));
        $crate::__json_array!($arr; $($rest)*);
    };
    ($arr:ident; []; [ $($body:tt)* ]) => {
        $arr.push($crate::json!([ $($body)* ]));
    };
    ($arr:ident; [$($val:tt)*]; , $($rest:tt)*) => {
        $arr.push($crate::json!($($val)*));
        $crate::__json_array!($arr; $($rest)*);
    };
    ($arr:ident; [$($val:tt)+];) => {
        $arr.push($crate::json!($($val)+));
    };
    ($arr:ident; [$($val:tt)*]; $head:tt $($rest:tt)*) => {
        $crate::__json_elem!($arr; [$($val)* $head]; $($rest)*);
    };
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(
            self.bytes.get(self.pos),
            Some(b' ' | b'\t' | b'\n' | b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<()> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                expected as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid surrogate pair".into()))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error("invalid \\u escape".into()))?
                            };
                            out.push(c);
                            // hex4 leaves pos after the 4 digits; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        other => {
                            return Err(Error(format!(
                                "invalid escape {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_round_trip() {
        let text = r#"{"a": [1, 2.5, -3e2], "b": {"nested": true}, "c": null, "s": "x\"y\n"}"#;
        let v: Value = from_str(text).unwrap();
        let compact = to_string(&v).unwrap();
        let v2: Value = from_str(&compact).unwrap();
        assert_eq!(v, v2);
        let pretty = to_string_pretty(&v).unwrap();
        let v3: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v3);
    }

    #[test]
    fn json_macro_shapes() {
        let n = 3usize;
        let v = json!({
            "lit": 1.5,
            "expr": n + 1,
            "nested": { "deep": [1, 2, 3] },
            "arr": [ {"k": "v"}, null, true ],
            "call": format!("x{n}"),
        });
        assert_eq!(v.get("expr").unwrap().as_u64(), Some(4));
        assert_eq!(
            v.get("nested").unwrap().get("deep").unwrap().as_array().unwrap().len(),
            3
        );
        assert_eq!(v.get("call").unwrap().as_str(), Some("x3"));
        assert_eq!(v.get("arr").unwrap().as_array().unwrap()[1], Value::Null);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn numbers_print_integers_cleanly() {
        assert_eq!(to_string(&json!({"k": 42.0})).unwrap(), r#"{"k":42}"#);
        assert_eq!(to_string(&1.25f64).unwrap(), "1.25");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }
}
